package benchwork

import (
	"container/heap"
	"testing"

	"repro/internal/sim"
)

// HeapKernel replicates the seed repo's binary-heap event queue — the
// pre-wheel kernel: a container/heap of (tick, seq)-ordered event
// structs, paying O(log n) comparisons plus interface boxing per push
// and pop. It is kept here for the same reason checker/naive and
// legacyCoverageTracker are kept: as the A/B baseline behind
// BENCH_5.json's event_kernel_speedup, and — via sim.NewWithKernel —
// as the old side of the machine-level old-vs-new equivalence test, so
// the derived numbers measure the real before/after rather than a
// strawman. Ordering is identical to the wheel's contract: by tick,
// then by scheduling order.
type HeapKernel struct {
	q   heapEvents
	seq uint64
}

// NewHeapKernel returns an empty heap-backed event queue.
func NewHeapKernel() *HeapKernel { return &HeapKernel{} }

type heapEvent struct {
	at  sim.Tick
	seq uint64
	h   sim.Handler
	arg any
	aux uint64
}

type heapEvents []heapEvent

func (h heapEvents) Len() int { return len(h) }
func (h heapEvents) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h heapEvents) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *heapEvents) Push(x interface{}) { *h = append(*h, x.(heapEvent)) }
func (h *heapEvents) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Push implements sim.ExternalKernel.
func (k *HeapKernel) Push(at sim.Tick, h sim.Handler, arg any, aux uint64) {
	k.seq++
	heap.Push(&k.q, heapEvent{at: at, seq: k.seq, h: h, arg: arg, aux: aux})
}

// Pop implements sim.ExternalKernel.
func (k *HeapKernel) Pop() (sim.Tick, sim.Handler, any, uint64, bool) {
	if len(k.q) == 0 {
		return 0, nil, nil, 0, false
	}
	e := heap.Pop(&k.q).(heapEvent)
	return e.at, e.h, e.arg, e.aux, true
}

// Peek implements sim.ExternalKernel.
func (k *HeapKernel) Peek() (sim.Tick, bool) {
	if len(k.q) == 0 {
		return 0, false
	}
	return k.q[0].at, true
}

// Len implements sim.ExternalKernel.
func (k *HeapKernel) Len() int { return len(k.q) }

// EventsPerOp is the scheduling volume of one event-kernel benchmark
// op: one burst of this many schedule+dispatch cycles, roughly the
// event traffic of one short test iteration (each simulated
// message/cycle is one event).
const EventsPerOp = 512

// kernelDelays is the benchmark's deterministic delay mix, shaped like
// the machine's real event population: delay-0 core advances and
// completion callbacks, L1/L2 access latencies, mesh traversals with
// jitter, memory round trips — plus one far-future timer per burst
// (the guest-barrier shape) to exercise the wheel's overflow tier.
var kernelDelays = [...]sim.Tick{
	0, 3, 0, 18, 7, 0, 3, 42, 0, 121, 3, 0, 26, 0, 9, 180,
}

// BenchEventKernel returns the event-kernel A/B benchmark body: one op
// schedules EventsPerOp events through the kernel and drains them,
// keeping a standing population so the heap pays its O(log n)
// comparisons. legacyHeap=true drives the seed-style binary heap
// through the legacy closure API (one closure per event — what every
// pre-wheel call site paid); legacyHeap=false drives the wheel's
// pooled ScheduleEvent path with one pre-bound handler, the pattern
// the cpu/coherence/interconnect/memsys controllers migrated to.
func BenchEventKernel(legacyHeap bool) func(b *testing.B) {
	return func(b *testing.B) {
		var s *sim.Sim
		if legacyHeap {
			s = sim.NewWithKernel(1, NewHeapKernel())
		} else {
			s = sim.New(1)
		}
		var fired uint64
		count := sim.Handler(func(any, uint64) { fired++ })
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < EventsPerOp; j++ {
				d := kernelDelays[j%len(kernelDelays)]
				if j == EventsPerOp/2 {
					d = 20000 // guest-barrier-gap shape: overflow tier
				}
				if legacyHeap {
					v := uint64(j)
					s.Schedule(d, func() { fired += v & 1 })
				} else {
					s.ScheduleEvent(d, count, nil, uint64(j))
				}
			}
			s.Run()
		}
		b.StopTimer()
		if s.Pending() != 0 {
			b.Fatalf("kernel left %d events pending", s.Pending())
		}
		_ = fired
		b.ReportMetric(float64(EventsPerOp), "events/op")
	}
}

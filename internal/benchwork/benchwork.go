// Package benchwork provides the shared checker benchmark workload
// used by both the root benchmark suite (BenchmarkCollectiveChecker)
// and the cmd/bench snapshot tool, so the CI-proven A/B and the
// BENCH_<n>.json numbers are guaranteed to measure the same thing.
package benchwork

import (
	"math/rand"
	"testing"

	"repro/internal/checker"
	"repro/internal/collective"
	"repro/internal/memmodel"
	"repro/internal/memsys"
	"repro/internal/testgen"
)

// CheckerWorkload builds the repetitive-iteration replay workload: one
// 1k-operation, 8-thread test and four serial interleavings of it —
// the shape the per-campaign hot path sees when most executions repeat
// the same observed orderings.
func CheckerWorkload() ([]testgen.Program, [][]int) {
	gen, err := testgen.NewGenerator(testgen.Config{
		Size: 1000, Threads: 8, Layout: memsys.MustLayout(8192, 16),
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		panic(err)
	}
	progs, err := testgen.Compile(gen.NewTest())
	if err != nil {
		panic(err)
	}
	const variants = 4
	orders := make([][]int, variants)
	for v := range orders {
		for i := 0; i < len(progs); i++ {
			orders[v] = append(orders[v], (i+v)%len(progs))
		}
	}
	return progs, orders
}

// ReplaySerial replays one serial execution of progs into rec with the
// threads run to completion in the given order — each order yields a
// distinct observed rf/co (reads see whatever the preceding threads
// left in memory), i.e. a distinct execution signature of the same
// test.
func ReplaySerial(rec *checker.Recorder, progs []testgen.Program, order []int) {
	mem := map[memsys.Addr]uint64{}
	for _, tid := range order {
		p := progs[tid]
		for idx := range p {
			in := &p[idx]
			switch in.Kind {
			case testgen.OpRead, testgen.OpReadAddrDp:
				rec.CommitRead(tid, idx, 0, in.Addr, mem[in.Addr.WordAddr()], false)
			case testgen.OpWrite:
				mem[in.Addr.WordAddr()] = in.WriteID
				rec.CommitWrite(tid, idx, 0, in.Addr, in.WriteID, false)
				rec.WriteSerialized(tid, idx, 0, in.Addr, in.WriteID)
			case testgen.OpFence:
				rec.CommitFence(tid, idx, 0, in.Fence)
			}
		}
	}
}

// BenchChecker returns the naive-vs-collective checker benchmark body:
// iterations cycle through the workload's interleavings, each ended
// with a full verify. With collectiveMode the recorder checks through
// a fresh signature memo (created per benchmark invocation so adaptive
// b.N re-runs start cold); the steady-state dedupe rate is reported as
// the "dedupe-%" metric.
func BenchChecker(collectiveMode bool, progs []testgen.Program, orders [][]int) func(b *testing.B) {
	return func(b *testing.B) {
		rec := checker.NewRecorder(memmodel.TSO{})
		if collectiveMode {
			rec.SetMemo(collective.NewMemo())
		}
		var dedupe float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ReplaySerial(rec, progs, orders[i%len(orders)])
			if v := rec.EndIteration(); v != nil {
				b.Fatalf("serial execution rejected: %v", v)
			}
			dedupe = rec.Dedupe().HitRate()
		}
		b.ReportMetric(100*dedupe, "dedupe-%")
	}
}

package benchwork

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/checker"
	"repro/internal/memmodel"
	"repro/internal/memmodel/fastpath"
	"repro/internal/testgen"
)

// FastcheckExecutions captures the checker workload's candidate
// executions in fully-assembled form (rf and co resolved), one per
// serial interleaving, so the exact-vs-fastpath A/B times pure
// decision procedure — no replay, no recorder bookkeeping — over the
// same graphs the campaign hot path checks.
func FastcheckExecutions(progs []testgen.Program, orders [][]int) []*memmodel.Execution {
	rec := checker.NewRecorder(memmodel.TSO{})
	execs := make([]*memmodel.Execution, 0, len(orders))
	for _, order := range orders {
		ReplaySerial(rec, progs, order)
		// EndIteration resolves rf and co into the captured execution in
		// place before handing the recorder a fresh one.
		x := rec.Execution()
		if v := rec.EndIteration(); v != nil {
			panic(fmt.Sprintf("benchwork: serial execution rejected: %v", v))
		}
		execs = append(execs, x)
	}
	return execs
}

// verifyFastpathAgreement asserts, for every captured execution, that
// the fast path's Result is identical to the exact checker's and that
// its verdict is conclusive — in-band, before any timing, so a
// speedup number can never be recorded for a checker that disagrees
// with the reference.
func verifyFastpathAgreement(fc *fastpath.Checker, execs []*memmodel.Execution, arch memmodel.Arch) {
	for i, x := range execs {
		exact := memmodel.Check(x, arch)
		res, v := fc.Check(x, arch)
		if !reflect.DeepEqual(res, exact) {
			panic(fmt.Sprintf("benchwork: fastpath Result diverges from exact on execution %d:\n  fast  %+v\n  exact %+v", i, res, exact))
		}
		if v.Outcome == fastpath.OutcomeInconclusive {
			panic(fmt.Sprintf("benchwork: fastpath inconclusive on supported execution %d", i))
		}
	}
}

// BenchExactCheck returns the baseline side of the checker-fastpath
// A/B: the full axiomatic checker (relation building, incremental
// topological GHB) over the captured executions.
func BenchExactCheck(execs []*memmodel.Execution, arch memmodel.Arch) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := memmodel.Check(execs[i%len(execs)], arch); !res.Valid {
				b.Fatalf("exact checker rejected workload execution: %+v", res)
			}
		}
	}
}

// BenchFastpathCheck returns the fast side: the vector-clock frontier
// + Kahn-wave checker over the same executions, through the same
// Check entry the recorder uses. Verdict agreement with the exact
// checker is asserted in-band before the timer starts; the
// "conclusive-%" metric records the fraction of checks the fast path
// decided without falling back (100 on this workload by construction
// — the gate reads it so a silent scope regression fails CI).
func BenchFastpathCheck(execs []*memmodel.Execution, arch memmodel.Arch) func(b *testing.B) {
	return func(b *testing.B) {
		fc := fastpath.New()
		verifyFastpathAgreement(fc, execs, arch)
		conclusive, checks := 0, 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, v := fc.Check(execs[i%len(execs)], arch)
			if !res.Valid {
				b.Fatalf("fastpath rejected workload execution: %+v", res)
			}
			checks++
			if v.Outcome != fastpath.OutcomeInconclusive {
				conclusive++
			}
		}
		b.StopTimer()
		b.ReportMetric(100*float64(conclusive)/float64(checks), "conclusive-%")
	}
}

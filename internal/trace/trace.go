// Package trace defines the external execution-trace interchange format
// that makes the checker usable as an oracle: simulators and silicon
// harnesses outside this repository dump candidate executions as traces,
// and cmd/check (through the public oracle package) decides them against
// the axiomatic models without the producer importing any internal
// package.
//
// A trace is the canonical shape of a candidate execution — per-thread
// op lists in program order plus the observed conflict orders — i.e.
// exactly the information collective.Signature hashes. Two encodings
// carry it:
//
//   - a line-oriented text format (text.go), versioned by a "mctrace 1"
//     header, designed to be written by hand and by non-Go tooling;
//   - a compact binary framing (binary.go), versioned by a "MCVB" magic,
//     for high-volume replay dumps.
//
// Both encodings round-trip losslessly: decode(encode(x)) reproduces an
// execution with the same collective signature (event keys are carried
// explicitly whenever they differ from their positional defaults, so
// RMW pairing and signature identity survive), and encode(decode(t))
// is byte-identical for canonically encoded traces.
package trace

import (
	"fmt"

	"repro/internal/memmodel"
	"repro/internal/memsys"
	"repro/internal/relation"
)

// FormatVersion is the trace format version both encodings carry.
// Decoders reject any other version rather than guessing.
const FormatVersion = 1

// OpKind classifies a trace op.
type OpKind uint8

const (
	// OpRead is a load observing Value.
	OpRead OpKind = iota
	// OpWrite is a store of Value.
	OpWrite
	// OpFence is a standalone fence of flavour Fence.
	OpFence
	// OpRMW is an atomic read-modify-write reading Value and writing
	// Value2; it expands to a read and a write event sharing one
	// instruction slot (subs 0 and 1), both atomic.
	OpRMW

	numOpKinds
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "r"
	case OpWrite:
		return "w"
	case OpFence:
		return "f"
	case OpRMW:
		return "u"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one instruction-level step of a thread's program, in program
// order. Event keys default to the op's position (running instruction
// index, sub 0); Keyed pins an explicit (Instr, Sub) for traces whose
// producers number instructions sparsely or pair RMW halves manually —
// keys feed collective.Signature, so preserving them preserves verdict
// identity across encode/decode.
type Op struct {
	// Kind is the op class.
	Kind OpKind `json:"kind"`
	// Addr is the word address accessed (unused for fences).
	Addr memsys.Addr `json:"addr,omitempty"`
	// Value is the value read (OpRead, OpRMW) or written (OpWrite).
	Value uint64 `json:"value,omitempty"`
	// Value2 is the value written by an OpRMW.
	Value2 uint64 `json:"value2,omitempty"`
	// Fence is the fence flavour for OpFence.
	Fence memmodel.FenceKind `json:"fence,omitempty"`
	// Atomic marks a plain read or write as an RMW half for producers
	// that pair halves via explicit keys instead of OpRMW.
	Atomic bool `json:"atomic,omitempty"`
	// Keyed marks Instr/Sub as explicit; when false the key is
	// positional.
	Keyed bool `json:"keyed,omitempty"`
	// Instr is the explicit instruction index when Keyed.
	Instr int `json:"instr,omitempty"`
	// Sub is the explicit sub-event number when Keyed (OpRMW ignores
	// it: the pair always takes subs 0 and 1).
	Sub int `json:"sub,omitempty"`
}

// Ref names an event by its stable key — the external form of
// memmodel.Key. Initial writes are never referenced by Ref; rf edges
// use RFEdge.Init and co orders list only program writes (the initial
// write is implicitly co-minimal).
type Ref struct {
	TID   int `json:"tid"`
	Instr int `json:"instr"`
	Sub   int `json:"sub,omitempty"`
}

func (r Ref) String() string {
	if r.Sub != 0 {
		return fmt.Sprintf("%d:%d.%d", r.TID, r.Instr, r.Sub)
	}
	return fmt.Sprintf("%d:%d", r.TID, r.Instr)
}

// RFEdge is one observed read-from edge: Read observed Write's value,
// or the initial value when Init. Reads without an explicit edge
// resolve by value at Execution time (0 reads the initial write, any
// other value must match exactly one write to the address).
type RFEdge struct {
	Read  Ref  `json:"read"`
	Write Ref  `json:"write,omitzero"`
	Init  bool `json:"init,omitempty"`
}

// COOrder is the observed coherence order of one address: every
// program write to Addr, oldest first. The initial write is implicit
// and co-minimal. Addresses without a COOrder default to per-thread
// program order of their writes, in thread declaration order — only
// unambiguous for single-writer addresses, so canonical encoders emit
// a COOrder for every written address.
type COOrder struct {
	Addr   memsys.Addr `json:"addr"`
	Writes []Ref       `json:"writes"`
}

// Thread is one thread's program slice in program order.
type Thread struct {
	TID int  `json:"tid"`
	Ops []Op `json:"ops"`
}

// Trace is one candidate execution in interchange form.
type Trace struct {
	// Name labels the trace in verdicts (optional).
	Name    string    `json:"name,omitempty"`
	Threads []Thread  `json:"threads"`
	RF      []RFEdge  `json:"rf,omitempty"`
	CO      []COOrder `json:"co,omitempty"`
}

// key computes the effective memmodel.Key of op i given the thread's
// running instruction counter, returning the key and the updated
// counter. The rule is shared by the decoder (assigning keys) and the
// encoder (detecting when an explicit key is needed): positional ops
// take (next, 0) and advance by one; keyed ops take their pinned key
// and advance the counter past it.
func (o *Op) key(tid, next int) (memmodel.Key, int) {
	if o.Keyed {
		k := memmodel.Key{TID: tid, Instr: o.Instr, Sub: o.Sub}
		if o.Kind == OpRMW {
			k.Sub = 0
		}
		if o.Instr >= next {
			next = o.Instr + 1
		}
		return k, next
	}
	return memmodel.Key{TID: tid, Instr: next}, next + 1
}

// Execution materializes the trace as a candidate execution via
// memmodel.Builder, sharing its well-formedness rules: explicit rf/co
// observations are pinned, everything else resolves by value and
// registration order. Events are added thread-major in declaration
// order, so decoding the same trace always yields byte-identical
// executions.
func (t *Trace) Execution() (*memmodel.Execution, error) {
	b := memmodel.NewBuilder()
	byKey := make(map[Ref]relation.EventID)
	note := func(tid int, k memmodel.Key, id relation.EventID) error {
		ref := Ref{TID: tid, Instr: k.Instr, Sub: k.Sub}
		if _, dup := byKey[ref]; dup {
			return fmt.Errorf("trace %s: duplicate event key %v", t.label(), ref)
		}
		byKey[ref] = id
		return nil
	}
	seenTID := make(map[int]bool)
	for _, th := range t.Threads {
		if seenTID[th.TID] {
			return nil, fmt.Errorf("trace %s: thread %d declared twice", t.label(), th.TID)
		}
		seenTID[th.TID] = true
		next := 0
		for i := range th.Ops {
			op := &th.Ops[i]
			var k memmodel.Key
			k, next = op.key(th.TID, next)
			switch op.Kind {
			case OpRead:
				id := b.ReadKeyed(k, op.Addr, op.Value, op.Atomic)
				if err := note(th.TID, k, id); err != nil {
					return nil, err
				}
			case OpWrite:
				id := b.WriteKeyed(k, op.Addr, op.Value, op.Atomic)
				if err := note(th.TID, k, id); err != nil {
					return nil, err
				}
			case OpFence:
				id := b.FenceKeyed(k, op.Fence)
				if err := note(th.TID, k, id); err != nil {
					return nil, err
				}
			case OpRMW:
				r := b.ReadKeyed(k, op.Addr, op.Value, true)
				if err := note(th.TID, k, r); err != nil {
					return nil, err
				}
				wk := k
				wk.Sub = 1
				w := b.WriteKeyed(wk, op.Addr, op.Value2, true)
				if err := note(th.TID, wk, w); err != nil {
					return nil, err
				}
			default:
				return nil, fmt.Errorf("trace %s: thread %d op %d: unknown kind %d", t.label(), th.TID, i, op.Kind)
			}
		}
	}
	resolve := func(ref Ref, what string) (relation.EventID, error) {
		id, ok := byKey[ref]
		if !ok {
			return 0, fmt.Errorf("trace %s: %s references unknown event %v", t.label(), what, ref)
		}
		return id, nil
	}
	for _, e := range t.RF {
		r, err := resolve(e.Read, "rf")
		if err != nil {
			return nil, err
		}
		if e.Init {
			b.SetRFInit(r)
			continue
		}
		w, err := resolve(e.Write, "rf")
		if err != nil {
			return nil, err
		}
		b.SetRF(r, w)
	}
	for _, c := range t.CO {
		writes := make([]relation.EventID, len(c.Writes))
		for i, ref := range c.Writes {
			w, err := resolve(ref, "co")
			if err != nil {
				return nil, err
			}
			writes[i] = w
		}
		b.CO(c.Addr, writes...)
	}
	x, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("trace %s: %v", t.label(), err)
	}
	return x, nil
}

func (t *Trace) label() string {
	if t.Name == "" {
		return "(unnamed)"
	}
	return t.Name
}

// FromExecution encodes a candidate execution as a canonical trace:
// threads in Threads() order, explicit keys only where they differ from
// positional defaults, adjacent atomic (read, write) pairs sharing an
// instruction collapsed to OpRMW, every rf edge explicit, and a COOrder
// for every address with at least one program write. Canonical traces
// re-encode byte-identically after a decode.
func FromExecution(name string, x *memmodel.Execution) (*Trace, error) {
	t := &Trace{Name: name}
	for _, tid := range x.Threads() {
		if tid == memmodel.InitTID {
			continue
		}
		th := Thread{TID: tid}
		ids := x.ThreadEvents(tid)
		next := 0
		for i := 0; i < len(ids); i++ {
			e := x.Event(ids[i])
			// Collapse an RMW pair into one OpRMW when it matches the
			// canonical shape CheckAtomicity pairs on.
			if i+1 < len(ids) {
				w := x.Event(ids[i+1])
				if e.Atomic && w.Atomic && e.IsRead() && w.IsWrite() &&
					e.Key.Instr == w.Key.Instr && e.Addr == w.Addr &&
					e.Key.Sub == 0 && w.Key.Sub == 1 {
					op := Op{Kind: OpRMW, Addr: e.Addr, Value: e.Value, Value2: w.Value}
					if e.Key.Instr != next {
						op.Keyed, op.Instr = true, e.Key.Instr
					}
					_, next = op.key(tid, next)
					th.Ops = append(th.Ops, op)
					i++
					continue
				}
			}
			var op Op
			switch {
			case e.IsRead():
				op = Op{Kind: OpRead, Addr: e.Addr, Value: e.Value, Atomic: e.Atomic}
			case e.IsWrite():
				op = Op{Kind: OpWrite, Addr: e.Addr, Value: e.Value, Atomic: e.Atomic}
			case e.Kind == memmodel.KindFence:
				op = Op{Kind: OpFence, Fence: e.Fence}
			default:
				return nil, fmt.Errorf("trace: event %v has unknown kind", e)
			}
			if e.Key.Instr != next || e.Key.Sub != 0 {
				op.Keyed, op.Instr, op.Sub = true, e.Key.Instr, e.Key.Sub
			}
			_, next = op.key(tid, next)
			th.Ops = append(th.Ops, op)
		}
		t.Threads = append(t.Threads, th)
	}

	ref := func(id relation.EventID) Ref {
		e := x.Event(id)
		return Ref{TID: e.Key.TID, Instr: e.Key.Instr, Sub: e.Key.Sub}
	}
	for _, tid := range x.Threads() {
		if tid == memmodel.InitTID {
			continue
		}
		for _, id := range x.ThreadEvents(tid) {
			e := x.Event(id)
			if !e.IsRead() {
				continue
			}
			w, ok := x.RF(id)
			if !ok {
				return nil, fmt.Errorf("trace: read %v has no rf edge", e)
			}
			edge := RFEdge{Read: ref(id)}
			if x.Event(w).IsInit() {
				edge.Init = true
			} else {
				edge.Write = ref(w)
			}
			t.RF = append(t.RF, edge)
		}
	}
	for _, addr := range x.Addresses() {
		var writes []Ref
		for _, id := range x.CO(addr) {
			if x.Event(id).IsInit() {
				continue
			}
			writes = append(writes, ref(id))
		}
		if len(writes) > 0 {
			t.CO = append(t.CO, COOrder{Addr: addr, Writes: writes})
		}
	}
	return t, nil
}

package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/memmodel"
	"repro/internal/memsys"
)

// TextHeader is the first line of every text trace stream. The version
// is explicit so decoders can reject formats they do not speak instead
// of misparsing them.
const TextHeader = "mctrace 1"

// The text format, line by line (# starts a comment, blank lines are
// skipped, one header per stream, any number of traces after it):
//
//	mctrace 1
//	trace <name>             begin a trace (name optional)
//	thread <tid>             begin a thread; ops follow in program order
//	r <addr> <val> [a] [@i[.s]]   read observing val
//	w <addr> <val> [a] [@i[.s]]   write storing val
//	f full|ss|ll [@i[.s]]         fence
//	u <addr> <rval> <wval> [@i]   atomic RMW reading rval, writing wval
//	rf <tid>:<i>[.<s>] <tid>:<i>[.<s>]|init   observed read-from edge
//	co <addr> <tid>:<i>[.<s>] ...             coherence order of addr
//	end                      finish the trace
//
// Addresses and values accept any base strconv.ParseUint base-0 does
// (0x..., 0o..., decimal); the canonical encoder writes addresses in
// hex and values in decimal. "a" marks a manually-paired RMW half;
// "@i[.s]" pins the event key when it differs from the positional
// default (running instruction index, sub 0).

// WriteText encodes traces canonically to w, header first.
func WriteText(w io.Writer, traces ...*Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, TextHeader)
	for _, t := range traces {
		writeTextTrace(bw, t)
	}
	return bw.Flush()
}

func writeTextTrace(bw *bufio.Writer, t *Trace) {
	if t.Name != "" {
		fmt.Fprintf(bw, "trace %s\n", t.Name)
	} else {
		fmt.Fprintln(bw, "trace")
	}
	for _, th := range t.Threads {
		fmt.Fprintf(bw, "thread %d\n", th.TID)
		for i := range th.Ops {
			op := &th.Ops[i]
			switch op.Kind {
			case OpRead, OpWrite:
				fmt.Fprintf(bw, "%s 0x%x %d", op.Kind, uint64(op.Addr), op.Value)
				if op.Atomic {
					bw.WriteString(" a")
				}
			case OpFence:
				fmt.Fprintf(bw, "f %s", op.Fence)
			case OpRMW:
				fmt.Fprintf(bw, "u 0x%x %d %d", uint64(op.Addr), op.Value, op.Value2)
			}
			if op.Keyed {
				if op.Sub != 0 && op.Kind != OpRMW {
					fmt.Fprintf(bw, " @%d.%d", op.Instr, op.Sub)
				} else {
					fmt.Fprintf(bw, " @%d", op.Instr)
				}
			}
			bw.WriteByte('\n')
		}
	}
	for _, e := range t.RF {
		if e.Init {
			fmt.Fprintf(bw, "rf %s init\n", e.Read)
		} else {
			fmt.Fprintf(bw, "rf %s %s\n", e.Read, e.Write)
		}
	}
	for _, c := range t.CO {
		fmt.Fprintf(bw, "co 0x%x", uint64(c.Addr))
		for _, w := range c.Writes {
			fmt.Fprintf(bw, " %s", w)
		}
		bw.WriteByte('\n')
	}
	fmt.Fprintln(bw, "end")
}

// Decoder streams traces out of a text stream, validating the header
// on the first read. Errors carry the 1-based line number they were
// detected on.
type Decoder struct {
	sc       *bufio.Scanner
	line     int
	headerOK bool
	err      error
}

// NewDecoder returns a streaming text decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	return &Decoder{sc: sc}
}

func (d *Decoder) errf(format string, args ...any) error {
	if d.err == nil {
		d.err = fmt.Errorf("trace: line %d: "+format, append([]any{d.line}, args...)...)
	}
	return d.err
}

// next returns the next meaningful line (comments stripped, blanks
// skipped), or ok=false at end of stream.
func (d *Decoder) next() (string, bool) {
	for d.sc.Scan() {
		d.line++
		s := d.sc.Text()
		if i := strings.IndexByte(s, '#'); i >= 0 {
			s = s[:i]
		}
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		return s, true
	}
	if err := d.sc.Err(); err != nil && d.err == nil {
		d.err = fmt.Errorf("trace: read: %w", err)
	}
	return "", false
}

// Next decodes and returns the next trace, or io.EOF after the last
// one. The first call validates the stream header.
func (d *Decoder) Next() (*Trace, error) {
	if d.err != nil {
		return nil, d.err
	}
	if !d.headerOK {
		line, ok := d.next()
		if !ok {
			if d.err != nil {
				return nil, d.err
			}
			return nil, io.EOF
		}
		f := strings.Fields(line)
		if len(f) != 2 || f[0] != "mctrace" {
			return nil, d.errf("expected header %q, got %q", TextHeader, line)
		}
		v, err := strconv.Atoi(f[1])
		if err != nil || v < 1 {
			return nil, d.errf("malformed trace format version %q", f[1])
		}
		if v != FormatVersion {
			return nil, d.errf("unsupported trace format version %d (decoder speaks %d)", v, FormatVersion)
		}
		d.headerOK = true
	}

	line, ok := d.next()
	if !ok {
		if d.err != nil {
			return nil, d.err
		}
		return nil, io.EOF
	}
	t := &Trace{}
	f := strings.Fields(line)
	switch f[0] {
	case "trace":
		if len(f) > 2 {
			return nil, d.errf("trace takes at most one name token, got %q", line)
		}
		if len(f) == 2 {
			t.Name = f[1]
		}
	case "thread":
		// A trace may start implicitly at its first thread.
		if err := d.thread(t, f); err != nil {
			return nil, err
		}
	default:
		return nil, d.errf("expected 'trace' or 'thread', got %q", f[0])
	}

	for {
		line, ok := d.next()
		if !ok {
			if d.err != nil {
				return nil, d.err
			}
			return nil, d.errf("unexpected end of stream: trace %s not closed with 'end'", t.label())
		}
		f := strings.Fields(line)
		switch f[0] {
		case "end":
			if len(f) != 1 {
				return nil, d.errf("'end' takes no arguments, got %q", line)
			}
			return t, nil
		case "thread":
			if err := d.thread(t, f); err != nil {
				return nil, err
			}
		case "r", "w", "f", "u":
			if len(t.Threads) == 0 {
				return nil, d.errf("op %q before any 'thread' line", line)
			}
			op, err := d.op(f)
			if err != nil {
				return nil, err
			}
			th := &t.Threads[len(t.Threads)-1]
			th.Ops = append(th.Ops, op)
		case "rf":
			edge, err := d.rf(f)
			if err != nil {
				return nil, err
			}
			t.RF = append(t.RF, edge)
		case "co":
			c, err := d.co(f)
			if err != nil {
				return nil, err
			}
			t.CO = append(t.CO, c)
		case "trace":
			return nil, d.errf("trace %s not closed with 'end' before the next 'trace'", t.label())
		default:
			return nil, d.errf("unknown directive %q", f[0])
		}
	}
}

func (d *Decoder) thread(t *Trace, f []string) error {
	if len(f) != 2 {
		return d.errf("'thread' takes exactly one TID, got %d tokens", len(f)-1)
	}
	tid, err := strconv.Atoi(f[1])
	if err != nil {
		return d.errf("malformed thread id %q: %v", f[1], err)
	}
	if tid < 0 {
		return d.errf("thread id %d is negative (TID -1 is reserved for initial writes)", tid)
	}
	t.Threads = append(t.Threads, Thread{TID: tid})
	return nil
}

// op parses one r/w/f/u line into an Op.
func (d *Decoder) op(f []string) (Op, error) {
	var op Op
	args := f[1:]
	// Peel the trailing key pin, if present.
	if len(args) > 0 && strings.HasPrefix(args[len(args)-1], "@") {
		instr, sub, err := parseKeyPin(args[len(args)-1])
		if err != nil {
			return op, d.errf("%v", err)
		}
		op.Keyed, op.Instr, op.Sub = true, instr, sub
		args = args[:len(args)-1]
	}
	switch f[0] {
	case "r", "w":
		op.Kind = OpRead
		if f[0] == "w" {
			op.Kind = OpWrite
		}
		if len(args) == 3 && args[2] == "a" {
			op.Atomic = true
			args = args[:2]
		}
		if len(args) != 2 {
			return op, d.errf("'%s' takes <addr> <val> [a], got %d args", f[0], len(args))
		}
		addr, err := parseAddr(args[0])
		if err != nil {
			return op, d.errf("%v", err)
		}
		val, err := strconv.ParseUint(args[1], 0, 64)
		if err != nil {
			return op, d.errf("malformed value %q: %v", args[1], err)
		}
		op.Addr, op.Value = addr, val
	case "f":
		if len(args) != 1 {
			return op, d.errf("'f' takes one fence kind, got %d args", len(args))
		}
		op.Kind = OpFence
		switch args[0] {
		case "full":
			op.Fence = memmodel.FenceFull
		case "ss":
			op.Fence = memmodel.FenceSS
		case "ll":
			op.Fence = memmodel.FenceLL
		default:
			return op, d.errf("unknown fence kind %q (want full, ss, or ll)", args[0])
		}
	case "u":
		if len(args) != 3 {
			return op, d.errf("'u' takes <addr> <rval> <wval>, got %d args", len(args))
		}
		op.Kind = OpRMW
		addr, err := parseAddr(args[0])
		if err != nil {
			return op, d.errf("%v", err)
		}
		rv, err := strconv.ParseUint(args[1], 0, 64)
		if err != nil {
			return op, d.errf("malformed read value %q: %v", args[1], err)
		}
		wv, err := strconv.ParseUint(args[2], 0, 64)
		if err != nil {
			return op, d.errf("malformed write value %q: %v", args[2], err)
		}
		op.Addr, op.Value, op.Value2 = addr, rv, wv
		if op.Keyed && op.Sub != 0 {
			return op, d.errf("'u' key pin takes no sub (the pair is always subs 0 and 1)")
		}
	}
	return op, nil
}

func (d *Decoder) rf(f []string) (RFEdge, error) {
	var e RFEdge
	if len(f) != 3 {
		return e, d.errf("'rf' takes <read-ref> <write-ref>|init, got %d args", len(f)-1)
	}
	read, err := parseRef(f[1])
	if err != nil {
		return e, d.errf("%v", err)
	}
	e.Read = read
	if f[2] == "init" {
		e.Init = true
		return e, nil
	}
	w, err := parseRef(f[2])
	if err != nil {
		return e, d.errf("%v", err)
	}
	e.Write = w
	return e, nil
}

func (d *Decoder) co(f []string) (COOrder, error) {
	var c COOrder
	if len(f) < 3 {
		return c, d.errf("'co' takes <addr> and at least one write ref")
	}
	addr, err := parseAddr(f[1])
	if err != nil {
		return c, d.errf("%v", err)
	}
	c.Addr = addr
	for _, tok := range f[2:] {
		ref, err := parseRef(tok)
		if err != nil {
			return c, d.errf("%v", err)
		}
		c.Writes = append(c.Writes, ref)
	}
	return c, nil
}

func parseAddr(s string) (memsys.Addr, error) {
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("malformed address %q: %v", s, err)
	}
	return memsys.Addr(v), nil
}

// parseKeyPin parses "@i" or "@i.s".
func parseKeyPin(s string) (instr, sub int, err error) {
	body := strings.TrimPrefix(s, "@")
	is, ss, dotted := strings.Cut(body, ".")
	instr, err = strconv.Atoi(is)
	if err != nil || instr < 0 {
		return 0, 0, fmt.Errorf("malformed key pin %q", s)
	}
	if dotted {
		sub, err = strconv.Atoi(ss)
		if err != nil || sub < 0 {
			return 0, 0, fmt.Errorf("malformed key pin %q", s)
		}
	}
	return instr, sub, nil
}

// parseRef parses "tid:instr" or "tid:instr.sub".
func parseRef(s string) (Ref, error) {
	var r Ref
	ts, rest, ok := strings.Cut(s, ":")
	if !ok {
		return r, fmt.Errorf("malformed event ref %q (want tid:instr[.sub])", s)
	}
	tid, err := strconv.Atoi(ts)
	if err != nil || tid < 0 {
		return r, fmt.Errorf("malformed event ref %q (bad tid)", s)
	}
	is, ss, dotted := strings.Cut(rest, ".")
	instr, err := strconv.Atoi(is)
	if err != nil || instr < 0 {
		return r, fmt.Errorf("malformed event ref %q (bad instr)", s)
	}
	r.TID, r.Instr = tid, instr
	if dotted {
		sub, err := strconv.Atoi(ss)
		if err != nil || sub < 0 {
			return r, fmt.Errorf("malformed event ref %q (bad sub)", s)
		}
		r.Sub = sub
	}
	return r, nil
}

// DecodeAll reads every trace in the stream.
func DecodeAll(r io.Reader) ([]*Trace, error) {
	d := NewDecoder(r)
	var out []*Trace
	for {
		t, err := d.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}

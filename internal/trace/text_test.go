package trace

import (
	"io"
	"strings"
	"testing"

	"repro/internal/memmodel"
)

// TestHandWrittenTrace: the friendly subset — no explicit keys, no rf,
// no co — resolves reads by value and defaults co to write order.
func TestHandWrittenTrace(t *testing.T) {
	const in = `mctrace 1
# message passing, forbidden outcome
trace mp-forbidden
thread 1
w 0x100 1
w 0x140 1
thread 2
r 0x140 1
r 0x100 0
end
`
	traces, err := DecodeAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || traces[0].Name != "mp-forbidden" {
		t.Fatalf("decoded %+v", traces)
	}
	x, err := traces[0].Execution()
	if err != nil {
		t.Fatal(err)
	}
	res := memmodel.Check(x, memmodel.TSO{})
	if res.Valid {
		t.Fatal("forbidden MP outcome accepted under TSO")
	}
	if res.Kind != memmodel.ViolationGHB {
		t.Fatalf("violation kind = %v, want ghb", res.Kind)
	}
	if memmodel.Check(x, memmodel.RMO{}).Valid != true {
		t.Fatal("MP outcome must be allowed under RMO without fences")
	}
}

func TestFenceAndRMWLines(t *testing.T) {
	const in = `mctrace 1
trace
thread 0
w 0x100 1
f ss
w 0x140 1
thread 1
u 0x140 1 2
f full
r 0x100 1
end
`
	traces, err := DecodeAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	x, err := traces[0].Execution()
	if err != nil {
		t.Fatal(err)
	}
	if !memmodel.Check(x, memmodel.PSO{}).Valid {
		t.Fatal("fenced MP with RMW should be valid under PSO")
	}
}

func TestVersionRejected(t *testing.T) {
	for _, in := range []string{
		"mctrace 2\ntrace\nend\n",
		"mctrace 0\ntrace\nend\n",
		"mctrace nine\ntrace\nend\n",
		"mctrace\ntrace\nend\n",
		"nottrace 1\n",
	} {
		if _, err := DecodeAll(strings.NewReader(in)); err == nil {
			t.Errorf("header %q accepted, want version/header error", strings.SplitN(in, "\n", 2)[0])
		}
	}
}

func TestBinaryVersionRejected(t *testing.T) {
	// Magic + version 2.
	if _, err := DecodeAllBinary(strings.NewReader("MCVB\x02")); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("binary version 2 accepted: %v", err)
	}
	if _, err := DecodeAllBinary(strings.NewReader("NOPE\x01")); err == nil ||
		!strings.Contains(err.Error(), "magic") {
		t.Errorf("binary bad magic accepted: %v", err)
	}
}

// TestLinePreciseErrors: decoder errors name the offending 1-based
// line.
func TestLinePreciseErrors(t *testing.T) {
	cases := []struct {
		in       string
		wantLine string
	}{
		{"mctrace 1\ntrace t\nthread 0\nr 0x100\nend\n", "line 4"},
		{"mctrace 1\ntrace t\nr 0x100 1\nend\n", "line 3"},
		{"mctrace 1\ntrace t\nthread 0\nw zzz 1\nend\n", "line 4"},
		{"mctrace 1\ntrace t\nthread 0\nf sideways\nend\n", "line 4"},
		{"mctrace 1\ntrace t\nthread 0\nrf 0:0\nend\n", "line 4"},
		{"mctrace 1\ntrace t\nthread 0\nbogus 1 2\nend\n", "line 4"},
		{"mctrace 1\ntrace t\nthread -1\nend\n", "line 3"},
		{"mctrace 1\ntrace t\nthread 0\nw 0x100 1\n", "line 4"}, // missing end
		{"mctrace 1\ntrace a\ntrace b\n", "line 3"},
	}
	for _, c := range cases {
		_, err := DecodeAll(strings.NewReader(c.in))
		if err == nil {
			t.Errorf("input %q accepted", c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.wantLine) {
			t.Errorf("input %q: error %q does not name %s", c.in, err, c.wantLine)
		}
	}
}

// TestDecoderStreaming: Next yields traces one at a time and io.EOF
// at the end.
func TestDecoderStreaming(t *testing.T) {
	const in = `mctrace 1
trace a
thread 0
w 0x100 1
end
trace b
thread 0
r 0x100 0
end
`
	d := NewDecoder(strings.NewReader(in))
	a, err := d.Next()
	if err != nil || a.Name != "a" {
		t.Fatalf("first = %v, %v", a, err)
	}
	b, err := d.Next()
	if err != nil || b.Name != "b" {
		t.Fatalf("second = %v, %v", b, err)
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("third err = %v, want io.EOF", err)
	}
}

// TestExecutionErrors: structurally broken traces fail at Execution
// time with the trace named.
func TestExecutionErrors(t *testing.T) {
	cases := []string{
		// Ambiguous read value (two writes of 1).
		"mctrace 1\ntrace amb\nthread 0\nw 0x100 1\nw 0x100 1\nthread 1\nr 0x100 1\nend\n",
		// Value never produced.
		"mctrace 1\ntrace missing\nthread 0\nr 0x100 7\nend\n",
		// rf references an unknown event.
		"mctrace 1\ntrace dangling\nthread 0\nr 0x100 0\nrf 0:0 3:9\nend\n",
		// co misses a registered write.
		"mctrace 1\ntrace shortco\nthread 0\nw 0x100 1\nw 0x100 2\nco 0x100 0:0\nend\n",
		// duplicate explicit key.
		"mctrace 1\ntrace dupkey\nthread 0\nw 0x100 1 @0\nw 0x100 2 @0\nend\n",
		// duplicate thread.
		"mctrace 1\ntrace dupthread\nthread 0\nthread 0\nend\n",
	}
	for _, in := range cases {
		traces, err := DecodeAll(strings.NewReader(in))
		if err != nil {
			t.Errorf("input %q failed at decode (%v), want Execution-time error", in, err)
			continue
		}
		if _, err := traces[0].Execution(); err == nil {
			t.Errorf("input %q materialized, want error", in)
		}
	}
}

// TestValueResolutionMatchesPins: a trace with explicit rf/co and its
// pin-free equivalent materialize identically when values are
// unambiguous.
func TestValueResolutionMatchesPins(t *testing.T) {
	const pinned = `mctrace 1
trace p
thread 1
w 0x100 1
thread 2
r 0x100 1
rf 2:0 1:0
co 0x100 1:0
end
`
	const inferred = `mctrace 1
trace p
thread 1
w 0x100 1
thread 2
r 0x100 1
end
`
	tp, err := DecodeAll(strings.NewReader(pinned))
	if err != nil {
		t.Fatal(err)
	}
	ti, err := DecodeAll(strings.NewReader(inferred))
	if err != nil {
		t.Fatal(err)
	}
	xp, err := tp[0].Execution()
	if err != nil {
		t.Fatal(err)
	}
	xi, err := ti[0].Execution()
	if err != nil {
		t.Fatal(err)
	}
	rp := memmodel.Check(xp, memmodel.SC{})
	ri := memmodel.Check(xi, memmodel.SC{})
	if !rp.Valid || !ri.Valid {
		t.Fatalf("valid trace rejected: pinned=%v inferred=%v", rp.Valid, ri.Valid)
	}
}

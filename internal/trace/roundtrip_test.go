package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/collective"
	"repro/internal/memmodel"
	"repro/internal/memsys"
	"repro/internal/relation"
)

// randExec builds a random SC-consistent execution by simulating one
// interleaving (same scheme as the fastpath differential fuzzer):
// threads step in random order against a flat memory, writes serialize
// into co in execution order, reads take the current value. Fences and
// atomic RMW pairs are sprinkled in.
func randExec(rng *rand.Rand) *memmodel.Execution {
	x := memmodel.NewExecution()
	nThreads := 2 + rng.Intn(3)
	nAddrs := 2 + rng.Intn(2)
	addrs := make([]memsys.Addr, nAddrs)
	for i := range addrs {
		addrs[i] = memsys.Addr(0x100 + 8*i)
	}
	mem := make(map[memsys.Addr]relation.EventID)
	nextVal := uint64(1)
	instr := make([]int, nThreads)
	steps := nThreads * (4 + rng.Intn(7))
	for s := 0; s < steps; s++ {
		tid := rng.Intn(nThreads)
		in := instr[tid]
		instr[tid]++
		addr := addrs[rng.Intn(nAddrs)]
		switch r := rng.Intn(10); {
		case r < 4:
			src, ok := mem[addr]
			if !ok {
				src = x.InitWrite(addr)
				mem[addr] = src
			}
			id := x.AddEvent(memmodel.Event{
				Key: memmodel.Key{TID: tid, Instr: in}, Kind: memmodel.KindRead,
				Addr: addr, Value: x.Event(src).Value,
			})
			if err := x.SetRF(id, src); err != nil {
				panic(err)
			}
		case r < 8:
			id := x.AddEvent(memmodel.Event{
				Key: memmodel.Key{TID: tid, Instr: in}, Kind: memmodel.KindWrite,
				Addr: addr, Value: nextVal,
			})
			nextVal++
			if err := x.AppendCO(id); err != nil {
				panic(err)
			}
			mem[addr] = id
		case r < 9:
			src, ok := mem[addr]
			if !ok {
				src = x.InitWrite(addr)
				mem[addr] = src
			}
			rid := x.AddEvent(memmodel.Event{
				Key: memmodel.Key{TID: tid, Instr: in}, Kind: memmodel.KindRead,
				Addr: addr, Value: x.Event(src).Value, Atomic: true,
			})
			if err := x.SetRF(rid, src); err != nil {
				panic(err)
			}
			wid := x.AddEvent(memmodel.Event{
				Key: memmodel.Key{TID: tid, Instr: in, Sub: 1}, Kind: memmodel.KindWrite,
				Addr: addr, Value: nextVal, Atomic: true,
			})
			nextVal++
			if err := x.AppendCO(wid); err != nil {
				panic(err)
			}
			mem[addr] = wid
		default:
			x.AddEvent(memmodel.Event{
				Key: memmodel.Key{TID: tid, Instr: in}, Kind: memmodel.KindFence,
				Fence: memmodel.FenceKind(rng.Intn(int(memmodel.NumFenceKinds))),
			})
		}
	}
	return x
}

var allModels = []memmodel.Arch{memmodel.SC{}, memmodel.TSO{}, memmodel.PSO{}, memmodel.RMO{}}

// TestRoundTripProperty: encode→decode through both codecs preserves
// the trace exactly, the collective signature exactly, and every
// model's verdict; decoding twice yields byte-identical executions;
// canonical traces re-encode byte-identically.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0x7ace))
	for i := 0; i < 200; i++ {
		x := randExec(rng)
		tr, err := FromExecution("t", x)
		if err != nil {
			t.Fatalf("iter %d: FromExecution: %v", i, err)
		}

		var text bytes.Buffer
		if err := WriteText(&text, tr); err != nil {
			t.Fatalf("iter %d: WriteText: %v", i, err)
		}
		textTraces, err := DecodeAll(bytes.NewReader(text.Bytes()))
		if err != nil {
			t.Fatalf("iter %d: text decode: %v\n%s", i, err, text.String())
		}
		if len(textTraces) != 1 || !reflect.DeepEqual(textTraces[0], tr) {
			t.Fatalf("iter %d: text round trip changed the trace:\n got %+v\nwant %+v", i, textTraces[0], tr)
		}

		var bin bytes.Buffer
		if err := WriteBinary(&bin, tr); err != nil {
			t.Fatalf("iter %d: WriteBinary: %v", i, err)
		}
		binTraces, err := DecodeAllBinary(bytes.NewReader(bin.Bytes()))
		if err != nil {
			t.Fatalf("iter %d: binary decode: %v", i, err)
		}
		if len(binTraces) != 1 || !reflect.DeepEqual(binTraces[0], tr) {
			t.Fatalf("iter %d: binary round trip changed the trace:\n got %+v\nwant %+v", i, binTraces[0], tr)
		}

		// Canonical re-encode is byte-identical.
		var text2 bytes.Buffer
		if err := WriteText(&text2, textTraces[0]); err != nil {
			t.Fatalf("iter %d: re-encode: %v", i, err)
		}
		if !bytes.Equal(text.Bytes(), text2.Bytes()) {
			t.Fatalf("iter %d: text re-encode not byte-identical:\n%s\nvs\n%s", i, text.String(), text2.String())
		}

		// Decoding is deterministic: two materializations are
		// byte-identical executions.
		x1, err := textTraces[0].Execution()
		if err != nil {
			t.Fatalf("iter %d: Execution: %v\n%s", i, err, text.String())
		}
		x2, err := binTraces[0].Execution()
		if err != nil {
			t.Fatalf("iter %d: Execution (binary): %v", i, err)
		}
		if !reflect.DeepEqual(x1, x2) {
			t.Fatalf("iter %d: decoded executions differ", i)
		}

		// Signature and verdicts survive the round trip.
		if got, want := collective.Signature(x1), collective.Signature(x); got != want {
			t.Fatalf("iter %d: signature changed across round trip: %x != %x\n%s", i, got, want, text.String())
		}
		for _, arch := range allModels {
			want := memmodel.Check(x, arch)
			got := memmodel.Check(x1, arch)
			if got.Valid != want.Valid || got.Kind != want.Kind {
				t.Fatalf("iter %d: %s verdict changed: (%v,%v) != (%v,%v)",
					i, arch.Name(), got.Valid, got.Kind, want.Valid, want.Kind)
			}
		}
	}
}

// TestRoundTripInvalidExecution: a forbidden MP outcome keeps its
// violation (and witness, via deterministic decode) across the round
// trip.
func TestRoundTripInvalidExecution(t *testing.T) {
	b := memmodel.NewBuilder()
	b.Write(1, 0x100, 1)
	b.Write(1, 0x140, 1)
	ry := b.Read(2, 0x140, 1)
	rx := b.Read(2, 0x100, 0)
	_, _ = ry, rx
	x := b.MustBuild()
	if memmodel.Check(x, memmodel.TSO{}).Valid {
		t.Fatal("forbidden MP outcome accepted directly")
	}

	tr, err := FromExecution("mp", x)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := back[0].Execution()
	if err != nil {
		t.Fatal(err)
	}
	want := memmodel.Check(x, memmodel.TSO{})
	got := memmodel.Check(x2, memmodel.TSO{})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("verdict changed across round trip:\n got %+v\nwant %+v", got, want)
	}
}

// TestMultiTraceStream: several traces share one stream in both
// encodings.
func TestMultiTraceStream(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var traces []*Trace
	for i := 0; i < 5; i++ {
		tr, err := FromExecution("", randExec(rng))
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, tr)
	}
	var text, bin bytes.Buffer
	if err := WriteText(&text, traces...); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, traces...); err != nil {
		t.Fatal(err)
	}
	fromText, err := DecodeAll(&text)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := DecodeAllBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromText, traces) || !reflect.DeepEqual(fromBin, traces) {
		t.Fatal("multi-trace stream did not round trip")
	}
}

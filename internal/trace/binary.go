package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/memmodel"
	"repro/internal/memsys"
)

func memAddrFromU64(v uint64) memsys.Addr     { return memsys.Addr(v) }
func fenceFromByte(b byte) memmodel.FenceKind { return memmodel.FenceKind(b) }

// BinaryMagic opens every binary trace stream, followed by a uvarint
// format version. The magic differs from both the text header and the
// verdict store's segment magic, so streams of the three kinds cannot
// be confused for one another.
const BinaryMagic = "MCVB"

// The binary framing carries the same model as the text format in
// uvarint-packed frames for high-volume replay dumps:
//
//	stream:  "MCVB" | uvarint version | frame*
//	frame:   uvarint len(name) | name |
//	         uvarint nthreads | thread* | uvarint nrf | rf* |
//	         uvarint nco | co*
//	thread:  uvarint tid | uvarint nops | op*
//	op:      flags byte (bits 0-1 kind, 2 atomic, 3 keyed) | body
//	         r/w: uvarint addr, uvarint value
//	         f:   fence byte
//	         u:   uvarint addr, uvarint value, uvarint value2
//	         keyed ops append uvarint instr, uvarint sub
//	rf:      ref(read) | init byte | ref(write) unless init
//	co:      uvarint addr | uvarint nwrites | ref*
//	ref:     uvarint tid | uvarint instr | uvarint sub
//
// All integers carried by traces are non-negative (negative TIDs are
// reserved for initial writes, which traces never reference), so plain
// uvarints suffice.

const (
	opFlagKindMask = 0b0011
	opFlagAtomic   = 0b0100
	opFlagKeyed    = 0b1000
)

// WriteBinary encodes traces to w in binary framing, magic first.
func WriteBinary(w io.Writer, traces ...*Trace) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(BinaryMagic)
	writeUvarint(bw, FormatVersion)
	for _, t := range traces {
		if err := writeBinaryTrace(bw, t); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeUvarint(bw *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	bw.Write(buf[:n])
}

func writeRef(bw *bufio.Writer, r Ref) error {
	if r.TID < 0 || r.Instr < 0 || r.Sub < 0 {
		return fmt.Errorf("trace: binary encoding: negative ref %v", r)
	}
	writeUvarint(bw, uint64(r.TID))
	writeUvarint(bw, uint64(r.Instr))
	writeUvarint(bw, uint64(r.Sub))
	return nil
}

func writeBinaryTrace(bw *bufio.Writer, t *Trace) error {
	writeUvarint(bw, uint64(len(t.Name)))
	bw.WriteString(t.Name)
	writeUvarint(bw, uint64(len(t.Threads)))
	for _, th := range t.Threads {
		if th.TID < 0 {
			return fmt.Errorf("trace: binary encoding: negative tid %d", th.TID)
		}
		writeUvarint(bw, uint64(th.TID))
		writeUvarint(bw, uint64(len(th.Ops)))
		for i := range th.Ops {
			op := &th.Ops[i]
			flags := byte(op.Kind) & opFlagKindMask
			if op.Atomic {
				flags |= opFlagAtomic
			}
			if op.Keyed {
				flags |= opFlagKeyed
			}
			bw.WriteByte(flags)
			switch op.Kind {
			case OpRead, OpWrite:
				writeUvarint(bw, uint64(op.Addr))
				writeUvarint(bw, op.Value)
			case OpFence:
				bw.WriteByte(byte(op.Fence))
			case OpRMW:
				writeUvarint(bw, uint64(op.Addr))
				writeUvarint(bw, op.Value)
				writeUvarint(bw, op.Value2)
			default:
				return fmt.Errorf("trace: binary encoding: unknown op kind %d", op.Kind)
			}
			if op.Keyed {
				if op.Instr < 0 || op.Sub < 0 {
					return fmt.Errorf("trace: binary encoding: negative key pin @%d.%d", op.Instr, op.Sub)
				}
				writeUvarint(bw, uint64(op.Instr))
				writeUvarint(bw, uint64(op.Sub))
			}
		}
	}
	writeUvarint(bw, uint64(len(t.RF)))
	for _, e := range t.RF {
		if err := writeRef(bw, e.Read); err != nil {
			return err
		}
		if e.Init {
			bw.WriteByte(1)
			continue
		}
		bw.WriteByte(0)
		if err := writeRef(bw, e.Write); err != nil {
			return err
		}
	}
	writeUvarint(bw, uint64(len(t.CO)))
	for _, c := range t.CO {
		writeUvarint(bw, uint64(c.Addr))
		writeUvarint(bw, uint64(len(c.Writes)))
		for _, w := range c.Writes {
			if err := writeRef(bw, w); err != nil {
				return err
			}
		}
	}
	return nil
}

// BinaryDecoder streams traces out of a binary stream, validating the
// magic and version on the first read.
type BinaryDecoder struct {
	br       *bufio.Reader
	headerOK bool
	err      error
}

// NewBinaryDecoder returns a streaming binary decoder reading from r.
func NewBinaryDecoder(r io.Reader) *BinaryDecoder {
	return &BinaryDecoder{br: bufio.NewReader(r)}
}

// limits keep a corrupt or adversarial length prefix from ballooning
// one frame into gigabytes of allocation.
const (
	maxBinaryName    = 1 << 16
	maxBinaryCount   = 1 << 24
	maxBinaryFence   = 0x7f
	maxBinarySignedU = 1 << 31 // int-typed fields decoded from uvarints
)

func (d *BinaryDecoder) fail(err error) error {
	if d.err == nil {
		d.err = err
	}
	return d.err
}

func (d *BinaryDecoder) failf(format string, args ...any) error {
	return d.fail(fmt.Errorf("trace: binary: "+format, args...))
}

func (d *BinaryDecoder) uvarint(what string) (uint64, error) {
	v, err := binary.ReadUvarint(d.br)
	if err != nil {
		return 0, d.failf("truncated %s: %v", what, err)
	}
	return v, nil
}

// uint reads a uvarint destined for an int-typed field, bounding it.
func (d *BinaryDecoder) uint(what string) (int, error) {
	v, err := d.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v >= maxBinarySignedU {
		return 0, d.failf("%s %d out of range", what, v)
	}
	return int(v), nil
}

func (d *BinaryDecoder) count(what string) (int, error) {
	n, err := d.uint(what)
	if err != nil {
		return 0, err
	}
	if n > maxBinaryCount {
		return 0, d.failf("%s %d exceeds limit %d", what, n, maxBinaryCount)
	}
	return n, nil
}

func (d *BinaryDecoder) ref(what string) (Ref, error) {
	var r Ref
	var err error
	if r.TID, err = d.uint(what + " tid"); err != nil {
		return r, err
	}
	if r.Instr, err = d.uint(what + " instr"); err != nil {
		return r, err
	}
	if r.Sub, err = d.uint(what + " sub"); err != nil {
		return r, err
	}
	return r, nil
}

// Next decodes and returns the next trace, or io.EOF after the last
// one.
func (d *BinaryDecoder) Next() (*Trace, error) {
	if d.err != nil {
		return nil, d.err
	}
	if !d.headerOK {
		magic := make([]byte, len(BinaryMagic))
		if _, err := io.ReadFull(d.br, magic); err != nil {
			if err == io.EOF {
				return nil, io.EOF
			}
			return nil, d.failf("truncated magic: %v", err)
		}
		if string(magic) != BinaryMagic {
			return nil, d.failf("bad magic %q (want %q)", magic, BinaryMagic)
		}
		v, err := d.uvarint("format version")
		if err != nil {
			return nil, err
		}
		if v != FormatVersion {
			return nil, d.failf("unsupported trace format version %d (decoder speaks %d)", v, FormatVersion)
		}
		d.headerOK = true
	}

	// Frame boundary: a clean EOF here means the stream is done.
	nameLen, err := binary.ReadUvarint(d.br)
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, d.failf("truncated frame: %v", err)
	}
	if nameLen > maxBinaryName {
		return nil, d.failf("name length %d exceeds limit %d", nameLen, maxBinaryName)
	}
	t := &Trace{}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(d.br, name); err != nil {
		return nil, d.failf("truncated name: %v", err)
	}
	t.Name = string(name)

	nthreads, err := d.count("thread count")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nthreads; i++ {
		var th Thread
		if th.TID, err = d.uint("tid"); err != nil {
			return nil, err
		}
		nops, err := d.count("op count")
		if err != nil {
			return nil, err
		}
		for j := 0; j < nops; j++ {
			flags, err := d.br.ReadByte()
			if err != nil {
				return nil, d.failf("truncated op flags: %v", err)
			}
			var op Op
			op.Kind = OpKind(flags & opFlagKindMask)
			op.Atomic = flags&opFlagAtomic != 0
			op.Keyed = flags&opFlagKeyed != 0
			if flags&^(opFlagKindMask|opFlagAtomic|opFlagKeyed) != 0 {
				return nil, d.failf("op flags %#x have unknown bits set", flags)
			}
			switch op.Kind {
			case OpRead, OpWrite:
				addr, err := d.uvarint("op addr")
				if err != nil {
					return nil, err
				}
				op.Addr = memAddrFromU64(addr)
				if op.Value, err = d.uvarint("op value"); err != nil {
					return nil, err
				}
			case OpFence:
				fb, err := d.br.ReadByte()
				if err != nil {
					return nil, d.failf("truncated fence kind: %v", err)
				}
				if fb > maxBinaryFence {
					return nil, d.failf("fence kind %d out of range", fb)
				}
				op.Fence = fenceFromByte(fb)
			case OpRMW:
				addr, err := d.uvarint("op addr")
				if err != nil {
					return nil, err
				}
				op.Addr = memAddrFromU64(addr)
				if op.Value, err = d.uvarint("op read value"); err != nil {
					return nil, err
				}
				if op.Value2, err = d.uvarint("op write value"); err != nil {
					return nil, err
				}
			}
			if op.Keyed {
				if op.Instr, err = d.uint("op key instr"); err != nil {
					return nil, err
				}
				if op.Sub, err = d.uint("op key sub"); err != nil {
					return nil, err
				}
			}
			th.Ops = append(th.Ops, op)
		}
		t.Threads = append(t.Threads, th)
	}

	nrf, err := d.count("rf count")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nrf; i++ {
		var e RFEdge
		if e.Read, err = d.ref("rf read"); err != nil {
			return nil, err
		}
		ib, err := d.br.ReadByte()
		if err != nil {
			return nil, d.failf("truncated rf init flag: %v", err)
		}
		switch ib {
		case 1:
			e.Init = true
		case 0:
			if e.Write, err = d.ref("rf write"); err != nil {
				return nil, err
			}
		default:
			return nil, d.failf("rf init flag %d is not 0 or 1", ib)
		}
		t.RF = append(t.RF, e)
	}

	nco, err := d.count("co count")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nco; i++ {
		var c COOrder
		addr, err := d.uvarint("co addr")
		if err != nil {
			return nil, err
		}
		c.Addr = memAddrFromU64(addr)
		nwrites, err := d.count("co write count")
		if err != nil {
			return nil, err
		}
		for j := 0; j < nwrites; j++ {
			w, err := d.ref("co write")
			if err != nil {
				return nil, err
			}
			c.Writes = append(c.Writes, w)
		}
		t.CO = append(t.CO, c)
	}
	return t, nil
}

// DecodeAllBinary reads every trace in the binary stream.
func DecodeAllBinary(r io.Reader) ([]*Trace, error) {
	d := NewBinaryDecoder(r)
	var out []*Trace
	for {
		t, err := d.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}

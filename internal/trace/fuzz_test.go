package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzTextDecoder: arbitrary input must never panic the text decoder,
// and anything it accepts must re-encode and re-decode to the same
// traces (decode∘encode is the identity on the decoder's image up to
// canonicalization of a second pass).
func FuzzTextDecoder(f *testing.F) {
	f.Add("mctrace 1\ntrace mp\nthread 1\nw 0x100 1\nw 0x140 1\nthread 2\nr 0x140 1\nr 0x100 0\nrf 2:0 1:1\nrf 2:1 init\nco 0x100 1:0\nco 0x140 1:1\nend\n")
	f.Add("mctrace 1\ntrace\nthread 0\nu 0x100 0 1\nf full\nf ss\nf ll\nw 0x100 2 a @7\nend\n")
	f.Add("mctrace 1\n# comment\n\ntrace x\nthread 3\nr 0x0 0\nend\ntrace y\nthread 0\nend\n")
	f.Add("mctrace 2\n")
	f.Add("mctrace 1\ntrace t\nthread 0\nw 99999999999999999999 1\nend\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		traces, err := DecodeAll(bytes.NewReader([]byte(in)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, traces...); err != nil {
			t.Fatalf("accepted traces failed to encode: %v", err)
		}
		again, err := DecodeAll(&buf)
		if err != nil {
			t.Fatalf("re-encoded stream failed to decode: %v\n%s", err, buf.String())
		}
		if len(traces) > 0 && !reflect.DeepEqual(traces, again) {
			t.Fatalf("decode(encode(decode(in))) != decode(in)\nin: %q", in)
		}
		// Materialization may legitimately fail (structural errors), but
		// must not panic.
		for _, tr := range traces {
			_, _ = tr.Execution()
		}
	})
}

// FuzzBinaryDecoder: arbitrary bytes must never panic or over-allocate
// the binary decoder.
func FuzzBinaryDecoder(f *testing.F) {
	tr := &Trace{
		Name: "seed",
		Threads: []Thread{
			{TID: 0, Ops: []Op{
				{Kind: OpWrite, Addr: 0x100, Value: 1},
				{Kind: OpRMW, Addr: 0x100, Value: 1, Value2: 2},
				{Kind: OpFence},
				{Kind: OpRead, Addr: 0x100, Value: 2, Keyed: true, Instr: 9},
			}},
		},
		RF: []RFEdge{{Read: Ref{TID: 0, Instr: 9}, Write: Ref{TID: 0, Instr: 1, Sub: 1}}},
		CO: []COOrder{{Addr: 0x100, Writes: []Ref{{TID: 0}, {TID: 0, Instr: 1, Sub: 1}}}},
	}
	var seed bytes.Buffer
	if err := WriteBinary(&seed, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("MCVB\x01"))
	f.Add([]byte("MCVB\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		traces, err := DecodeAllBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, traces...); err != nil {
			return // decoder is laxer than the encoder (e.g. odd flags)
		}
		again, err := DecodeAllBinary(&buf)
		if err != nil {
			t.Fatalf("re-encoded stream failed to decode: %v", err)
		}
		if len(traces) > 0 && !reflect.DeepEqual(traces, again) {
			t.Fatal("binary decode(encode(decode(in))) != decode(in)")
		}
	})
}

package mcversi

import "testing"

func TestBugRegistryExposed(t *testing.T) {
	if len(Bugs()) != 11 || len(BugNames()) != 11 {
		t.Fatalf("public bug registry has %d/%d entries, want 11", len(Bugs()), len(BugNames()))
	}
}

func TestNewCampaignConfigPaperScale(t *testing.T) {
	cfg := NewCampaignConfig(GenGPAll, MESI, "LQ+no-TSO")
	if cfg.Test.Size != 1000 {
		t.Errorf("test size = %d, want 1000 (Table 3)", cfg.Test.Size)
	}
	if cfg.Host.Iterations != 10 {
		t.Errorf("iterations = %d, want 10 (Table 3)", cfg.Host.Iterations)
	}
	if cfg.GP.PopulationSize != 100 {
		t.Errorf("population = %d, want 100 (Table 3)", cfg.GP.PopulationSize)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("paper-scale config invalid: %v", err)
	}
}

func TestScaledCampaignRunEndToEnd(t *testing.T) {
	cfg := ScaledCampaignConfig(GenRandom, MESI, "LQ+no-TSO", 1024)
	cfg.Seed = 5
	cfg.MaxTestRuns = 120
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Error("LQ+no-TSO not found through the public API")
	}
}

func TestRunSamplesSeedsDiffer(t *testing.T) {
	cfg := ScaledCampaignConfig(GenRandom, MESI, "", 1024)
	cfg.MaxTestRuns = 3
	results, err := RunSamples(cfg, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	for _, r := range results {
		if r.Found {
			t.Errorf("bug-free sample reported a bug: %s", r.Detail)
		}
	}
}

func TestLitmusSuiteExposed(t *testing.T) {
	suite := LitmusSuite()
	if len(suite) != 38 {
		t.Fatalf("suite = %d tests, want 38", len(suite))
	}
	cfg := DefaultLitmusConfig(MESI)
	cfg.MaxPasses = 1
	cfg.IterationsPerTest = 2
	res, err := RunLitmus(cfg, "", 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Errorf("bug-free litmus run fired: %s", res.Detail)
	}
	if _, err := RunLitmus(cfg, "no-such-bug", 4); err == nil {
		t.Error("unknown bug accepted by RunLitmus")
	}
}

func TestMemoryLayoutExposed(t *testing.T) {
	if _, err := NewMemoryLayout(8192, 16); err != nil {
		t.Errorf("paper layout rejected: %v", err)
	}
	if _, err := NewMemoryLayout(100, 13); err == nil {
		t.Error("invalid layout accepted")
	}
}

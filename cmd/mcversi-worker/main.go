// Command mcversi-worker is a McVerSi campaign fleet worker: it claims
// deterministic seed-range leases from a mcversid service over HTTP,
// runs them through the campaign fleet, and reports shard results.
//
//	mcversi-worker -server http://queue-host:8433 -name rack7-3
//
// Workers are stateless and interchangeable — every lease carries its
// full campaign spec, and a shard run is a pure function of
// (spec, range). Killing a worker mid-lease loses nothing: the lease
// expires, the range is re-issued, and the re-run produces the same
// bytes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/collective/store"
	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	server := flag.String("server", "", "mcversid base URL (required), e.g. http://127.0.0.1:8433")
	name := flag.String("name", "", "worker name reported in leases (default host-pid)")
	poll := flag.Duration("poll", 250*time.Millisecond, "idle claim interval")
	parallel := flag.Int("parallel", 0, "intra-shard fleet workers (0 = all cores)")
	storeDir := flag.String("store", "", "durable verdict store directory shared across this worker's shards and restarts")
	flag.Parse()

	if *server == "" {
		fmt.Fprintln(os.Stderr, "mcversi-worker: -server is required")
		os.Exit(2)
	}
	if *name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var vstore *store.Store
	if *storeDir != "" {
		var err error
		vstore, err = store.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcversi-worker:", err)
			os.Exit(1)
		}
	}

	fmt.Fprintf(os.Stderr, "mcversi-worker: %s polling %s every %s\n", *name, *server, *poll)
	agg := &obs.Agg{}
	wopts := service.WorkerOptions{
		Name:         *name,
		Poll:         *poll,
		FleetWorkers: *parallel,
		Obs:          agg,
	}
	if vstore != nil {
		// Assign only when open: a typed-nil *store.Store in the
		// interface field would read as "store attached".
		wopts.Store = vstore
	}
	_ = service.RunWorker(ctx, service.NewClient(*server), wopts)
	// The same per-phase breakdown the service aggregates fleet-wide,
	// scoped to this worker's completed shards.
	fmt.Fprintf(os.Stderr, "mcversi-worker: %s phase breakdown: %s\n", *name, agg.Snapshot())
	if vstore != nil {
		if err := vstore.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "mcversi-worker: verdict store:", err)
			os.Exit(1)
		}
	}
}

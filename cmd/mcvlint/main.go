// Command mcvlint is this repository's determinism & merge-algebra
// static-analysis suite, speaking the cmd/go vet tool protocol:
//
//	go build -o mcvlint ./cmd/mcvlint
//	go vet -vettool=./mcvlint ./...
//
// It enforces, per package, the invariants the distributed campaign
// service is built on: no wall-clock/global-RNG/environment reads in
// determinism-critical packages (nondeterm), no order-sensitive output
// built from map iteration (maprange), no counters left out of
// Merge/Union methods (mergefields), and explicit, documented json
// tags on wire structs (wiretags). See internal/lint for the analyzer
// framework and README.md "Static analysis" for the contract.
package main

import "repro/internal/lint"

func main() {
	lint.Main(lint.DefaultAnalyzers())
}

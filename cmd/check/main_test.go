package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/oracle"
)

// corpusText returns the litmus corpus as a text stream via the same
// path as -emit-corpus.
func corpusText(t *testing.T) []byte {
	t.Helper()
	var out, errb bytes.Buffer
	if code := run([]string{"-emit-corpus", "text"}, strings.NewReader(""), &out, &errb); code != 0 {
		t.Fatalf("emit-corpus exited %d: %s", code, errb.String())
	}
	return out.Bytes()
}

// TestCorpusGolden: verdicts from the CLI pipeline match the documented
// litmus answers and the in-process oracle, model for model.
func TestCorpusGolden(t *testing.T) {
	in := corpusText(t)
	var out, errb bytes.Buffer
	code := run([]string{"-model", "all", "-json"}, bytes.NewReader(in), &out, &errb)
	if code != 1 {
		// The corpus is all forbidden-outcome traces; at least SC must
		// reject every one of them.
		t.Fatalf("exit code = %d (stderr %q), want 1", code, errb.String())
	}

	corpus, err := oracle.LitmusCorpus()
	if err != nil {
		t.Fatal(err)
	}
	models := oracle.Models()
	dec := json.NewDecoder(bytes.NewReader(out.Bytes()))
	n := 0
	for dec.More() {
		var v oracle.Verdict
		if err := dec.Decode(&v); err != nil {
			t.Fatal(err)
		}
		e := corpus[v.Index]
		if v.Name != e.Trace.Name {
			t.Fatalf("verdict %d named %q, corpus says %q", v.Index, v.Name, e.Trace.Name)
		}
		if want := !e.ForbiddenUnder[v.Model]; v.Valid != want {
			t.Errorf("%s under %s: valid=%v, corpus says %v", v.Name, v.Model, v.Valid, want)
		}

		// Byte-identical to the in-process oracle's verdict.
		c, err := oracle.NewChecker(v.Model, oracle.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := c.CheckTrace(e.Trace, v.Index)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := json.Marshal(v)
		exp, _ := json.Marshal(want)
		if !bytes.Equal(got, exp) {
			t.Errorf("CLI verdict differs from in-process oracle:\n got %s\nwant %s", got, exp)
		}
		n++
	}
	if want := len(corpus) * len(models); n != want {
		t.Fatalf("got %d verdicts, want %d", n, want)
	}
}

// TestBinaryPathMatchesText: the binary corpus through -format auto
// produces byte-identical output to the text corpus.
func TestBinaryPathMatchesText(t *testing.T) {
	var bin, errb bytes.Buffer
	if code := run([]string{"-emit-corpus", "binary"}, strings.NewReader(""), &bin, &errb); code != 0 {
		t.Fatalf("emit-corpus binary exited %d: %s", code, errb.String())
	}
	var fromText, fromBin bytes.Buffer
	if code := run([]string{"-json"}, bytes.NewReader(corpusText(t)), &fromText, &errb); code != 1 {
		t.Fatalf("text run exited %d: %s", code, errb.String())
	}
	if code := run([]string{"-json"}, bytes.NewReader(bin.Bytes()), &fromBin, &errb); code != 1 {
		t.Fatalf("binary run exited %d: %s", code, errb.String())
	}
	if !bytes.Equal(fromText.Bytes(), fromBin.Bytes()) {
		t.Fatalf("text and binary pipelines disagree:\n%s\nvs\n%s", fromText.String(), fromBin.String())
	}
}

// TestParallelMatchesSequential: -parallel fan-out preserves input-order
// output exactly.
func TestParallelMatchesSequential(t *testing.T) {
	in := corpusText(t)
	var seq, par, errb bytes.Buffer
	if code := run([]string{"-json"}, bytes.NewReader(in), &seq, &errb); code != 1 {
		t.Fatalf("sequential exited %d: %s", code, errb.String())
	}
	if code := run([]string{"-json", "-parallel", "4"}, bytes.NewReader(in), &par, &errb); code != 1 {
		t.Fatalf("parallel exited %d: %s", code, errb.String())
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatal("parallel output differs from sequential")
	}
}

// TestExactMatchesFast: -exact changes nothing about the verdict stream.
func TestExactMatchesFast(t *testing.T) {
	in := corpusText(t)
	var fast, exact, errb bytes.Buffer
	if code := run([]string{"-json"}, bytes.NewReader(in), &fast, &errb); code != 1 {
		t.Fatalf("fast exited %d: %s", code, errb.String())
	}
	if code := run([]string{"-json", "-exact"}, bytes.NewReader(in), &exact, &errb); code != 1 {
		t.Fatalf("exact exited %d: %s", code, errb.String())
	}
	if !bytes.Equal(fast.Bytes(), exact.Bytes()) {
		t.Fatal("-exact output differs from fast-path output")
	}
}

// TestExitCodes: 0 all-valid, 1 violation, 2 errors.
func TestExitCodes(t *testing.T) {
	const valid = "mctrace 1\ntrace ok\nthread 0\nw 0x100 1\nr 0x100 1\nend\n"
	var out, errb bytes.Buffer
	if code := run([]string{"-model", "SC"}, strings.NewReader(valid), &out, &errb); code != 0 {
		t.Errorf("valid trace exited %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "SC valid") {
		t.Errorf("text output %q missing verdict", out.String())
	}

	const forbidden = "mctrace 1\ntrace sb\nthread 0\nw 0x100 1\nr 0x140 0\nthread 1\nw 0x140 1\nr 0x100 0\nend\n"
	out.Reset()
	if code := run([]string{"-model", "SC"}, strings.NewReader(forbidden), &out, &errb); code != 1 {
		t.Errorf("forbidden SB exited %d, want 1", code)
	}
	if !strings.Contains(out.String(), "INVALID") {
		t.Errorf("text output %q missing INVALID", out.String())
	}

	for _, args := range [][]string{
		{"-model", "XC"},
		{"-format", "sideways"},
		{"-emit-corpus", "sideways"},
	} {
		errb.Reset()
		if code := run(args, strings.NewReader(""), &out, &errb); code != 2 {
			t.Errorf("%v exited %d, want 2", args, code)
		}
	}
	errb.Reset()
	if code := run([]string{"-model", "SC"}, strings.NewReader("garbage\n"), &out, &errb); code != 2 {
		t.Errorf("garbage input exited %d, want 2 (stderr %q)", code, errb.String())
	}
	// Structurally broken trace: decodes, fails at materialization.
	errb.Reset()
	const broken = "mctrace 1\ntrace b\nthread 0\nr 0x100 7\nend\n"
	if code := run([]string{"-model", "SC"}, strings.NewReader(broken), &out, &errb); code != 2 {
		t.Errorf("unmaterializable trace exited %d, want 2 (stderr %q)", code, errb.String())
	}
}

// TestDurableStoreWarm: a second run over the same -store answers from
// the durable tier and reports it under -progress.
func TestDurableStoreWarm(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "verdicts")
	in := corpusText(t)
	var cold, warm, errCold, errWarm bytes.Buffer
	if code := run([]string{"-json", "-store", dir, "-progress"}, bytes.NewReader(in), &cold, &errCold); code != 1 {
		t.Fatalf("cold run exited %d: %s", code, errCold.String())
	}
	if code := run([]string{"-json", "-store", dir, "-progress"}, bytes.NewReader(in), &warm, &errWarm); code != 1 {
		t.Fatalf("warm run exited %d: %s", code, errWarm.String())
	}
	if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
		t.Fatal("warm verdicts differ from cold")
	}
	if !strings.Contains(errWarm.String(), "durable") {
		t.Errorf("warm -progress output %q does not report durable hits", errWarm.String())
	}
}

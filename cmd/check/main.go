// Command check is the standalone oracle: it reads candidate-execution
// traces (text or binary, files or stdin) and decides each against the
// bundled axiomatic memory models, with the same fast-path-first,
// memo-deduplicated pipeline — and byte-identical verdicts — as an
// in-process campaign.
//
//	check -model TSO trace.txt            # human-readable verdicts
//	check -model all -json < traces.bin   # NDJSON, one verdict per line
//	check -store /var/mcversi/verdicts …  # durable cross-run memoization
//	check -emit-corpus text               # dump the litmus known-answer corpus
//
// Exit status: 0 when every trace is valid under every requested model,
// 1 when any violation was found, 2 on usage, decode, or I/O errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"repro/oracle"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// job is one (trace, model) verdict to compute; verdicts land in a
// preallocated slot so output order is input order regardless of
// -parallel scheduling.
type job struct {
	trace int
	model int
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	fs.SetOutput(stderr)
	model := fs.String("model", "all", "model(s) to check against: a name, a comma-separated list, or 'all'")
	format := fs.String("format", "auto", "trace encoding: text | binary | auto (sniff the stream magic)")
	jsonOut := fs.Bool("json", false, "emit NDJSON verdicts (one oracle.Verdict per line) instead of text")
	parallel := fs.Int("parallel", 1, "verdict workers fanning out over independent traces")
	exact := fs.Bool("exact", false, "disable the fast-path pass (A/B reference; verdicts are identical)")
	storeDir := fs.String("store", "", "durable verdict store directory (shared across runs and with campaigns)")
	scope := fs.String("scope", "", "verdict scope isolating this run's memo entries from other scenarios")
	progress := fs.Bool("progress", false, "report phase breakdown and memo/fast-path counters to stderr")
	emitCorpus := fs.String("emit-corpus", "", "write the litmus known-answer corpus to stdout (text | binary) and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *emitCorpus != "" {
		return runEmitCorpus(*emitCorpus, stdout, stderr)
	}

	models, err := resolveModels(*model)
	if err != nil {
		fmt.Fprintln(stderr, "check:", err)
		return 2
	}

	traces, err := readTraces(fs.Args(), *format, stdin)
	if err != nil {
		fmt.Fprintln(stderr, "check:", err)
		return 2
	}

	memo := oracle.NewMemo()
	var store *oracle.Store
	if *storeDir != "" {
		store, err = oracle.OpenStore(*storeDir)
		if err != nil {
			fmt.Fprintln(stderr, "check:", err)
			return 2
		}
		defer store.Close()
	}
	opts := oracle.Options{Exact: *exact, Memo: memo, Scope: *scope}
	if store != nil {
		opts.Store = store
	}

	// One worker = one Checker per model (Checkers are single-goroutine;
	// the memo and store are the shared tiers). Verdicts land in
	// input-order slots.
	workers := *parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(traces) && len(traces) > 0 {
		workers = len(traces)
	}
	verdicts := make([][]oracle.Verdict, len(traces))
	errs := make([][]error, len(traces))
	for i := range verdicts {
		verdicts[i] = make([]oracle.Verdict, len(models))
		errs[i] = make([]error, len(models))
	}
	jobs := make(chan job)
	var (
		wg        sync.WaitGroup
		statMu    sync.Mutex
		phases    oracle.PhaseSnapshot
		fastpath  oracle.FastpathStats
		buildErrs []error
	)
	for w := 0; w < workers; w++ {
		checkers := make([]*oracle.Checker, len(models))
		var berr error
		for mi, m := range models {
			checkers[mi], berr = oracle.NewChecker(m, opts)
			if berr != nil {
				break
			}
		}
		if berr != nil {
			buildErrs = append(buildErrs, berr)
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				verdicts[j.trace][j.model], errs[j.trace][j.model] =
					checkers[j.model].CheckTrace(traces[j.trace], j.trace)
			}
			statMu.Lock()
			for _, c := range checkers {
				phases = phases.Merge(c.Phases())
				fastpath.Merge(c.Fastpath())
			}
			statMu.Unlock()
		}()
	}
	if len(buildErrs) > 0 {
		close(jobs)
		wg.Wait()
		fmt.Fprintln(stderr, "check:", buildErrs[0])
		return 2
	}
	for ti := range traces {
		for mi := range models {
			jobs <- job{trace: ti, model: mi}
		}
	}
	close(jobs)
	wg.Wait()

	status := 0
	enc := json.NewEncoder(stdout)
	for ti := range traces {
		for mi := range models {
			if err := errs[ti][mi]; err != nil {
				fmt.Fprintf(stderr, "check: trace %d: %v\n", ti, err)
				status = 2
				continue
			}
			v := verdicts[ti][mi]
			if !v.Valid && status == 0 {
				status = 1
			}
			if *jsonOut {
				if err := enc.Encode(v); err != nil {
					fmt.Fprintln(stderr, "check:", err)
					return 2
				}
				continue
			}
			name := v.Name
			if name == "" {
				name = fmt.Sprintf("trace %d", v.Index)
			}
			if v.Valid {
				fmt.Fprintf(stdout, "%s: %s valid\n", name, v.Model)
			} else {
				fmt.Fprintf(stdout, "%s: %s INVALID (%s): %s\n", name, v.Model, v.Kind, v.Detail)
			}
		}
	}

	if *progress {
		fmt.Fprintf(stderr, "[obs] %d traces × %d models; phase breakdown: %s\n",
			len(traces), len(models), phases)
		d := memo.Stats()
		if d.Checks > 0 {
			fmt.Fprintf(stderr, "[obs] collective checking: %s\n", d)
		}
		if fastpath.Checks > 0 {
			fmt.Fprintf(stderr, "[obs] checker fast path: %s\n", fastpath)
		}
	}
	if store != nil {
		if err := store.Close(); err != nil {
			fmt.Fprintln(stderr, "check:", err)
			return 2
		}
	}
	return status
}

// resolveModels expands the -model flag into validated model names in
// the bundled containment order (so "all" output is deterministic and
// lists strongest first).
func resolveModels(spec string) ([]string, error) {
	if spec == "all" || spec == "" {
		return oracle.Models(), nil
	}
	var out []string
	seen := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		m, err := oracle.ModelByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		if !seen[m.Name()] {
			seen[m.Name()] = true
			out = append(out, m.Name())
		}
	}
	return out, nil
}

// readTraces decodes every trace from the named files in order, or from
// stdin when no files (or "-") are given.
func readTraces(files []string, format string, stdin io.Reader) ([]*oracle.Trace, error) {
	if len(files) == 0 {
		files = []string{"-"}
	}
	var traces []*oracle.Trace
	for _, name := range files {
		var r io.Reader
		if name == "-" {
			r = stdin
		} else {
			f, err := os.Open(name)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			r = f
		}
		dec, err := oracle.NewTraceReader(r, format)
		if err != nil {
			return nil, err
		}
		for {
			tr, err := dec.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				if name != "-" {
					return nil, fmt.Errorf("%s: %w", name, err)
				}
				return nil, err
			}
			traces = append(traces, tr)
		}
	}
	return traces, nil
}

// runEmitCorpus dumps the bundled litmus classics as a trace stream —
// the known-answer input CI pipes back through check.
func runEmitCorpus(format string, stdout, stderr io.Writer) int {
	corpus, err := oracle.LitmusCorpus()
	if err != nil {
		fmt.Fprintln(stderr, "check:", err)
		return 2
	}
	traces := make([]*oracle.Trace, len(corpus))
	for i, e := range corpus {
		traces[i] = e.Trace
	}
	switch format {
	case "text":
		err = oracle.WriteTraces(stdout, traces...)
	case "binary":
		err = oracle.WriteTracesBinary(stdout, traces...)
	default:
		fmt.Fprintf(stderr, "check: -emit-corpus %q (want text or binary)\n", format)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "check:", err)
		return 2
	}
	return 0
}

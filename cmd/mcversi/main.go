// Command mcversi runs one McVerSi verification campaign: a generator
// (rand | gp-all | gp-std-xo) hunting one injected bug (or none) on a
// simulated MESI or TSO-CC machine.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	gen := flag.String("gen", "gp-all", "generator: rand | gp-all | gp-std-xo")
	proto := flag.String("protocol", "MESI", "protocol: MESI | TSO-CC")
	bug := flag.String("bug", "", "bug to inject (empty = none); -list for names")
	mem := flag.Int("mem", 8192, "test memory bytes (paper: 1024 or 8192)")
	budget := flag.Int("budget", 1000, "campaign budget in test-runs")
	samples := flag.Int("samples", 1, "number of samples (distinct seeds)")
	seed := flag.Int64("seed", 1, "base seed")
	list := flag.Bool("list", false, "list the 11 studied bugs and exit")
	flag.Parse()

	if *list {
		for _, b := range mcversi.Bugs() {
			star := " "
			if b.Real {
				star = "*"
			}
			fmt.Printf("%s %-26s [%s] %s\n", star, b.Name, b.Protocol, b.Description)
		}
		return
	}

	cfg := mcversi.ScaledCampaignConfig(mcversi.GeneratorKind(*gen), mcversi.Protocol(*proto), *bug, *mem)
	cfg.MaxTestRuns = *budget
	results, err := mcversi.RunSamples(cfg, *samples, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcversi:", err)
		os.Exit(1)
	}
	found := 0
	for i, r := range results {
		fmt.Printf("sample %d: %s\n", i, r)
		if r.Found {
			found++
			fmt.Printf("  %s\n", strings.TrimSpace(r.Detail))
		}
	}
	fmt.Printf("\n%d/%d samples found the bug\n", found, len(results))
}

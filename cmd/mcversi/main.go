// Command mcversi runs McVerSi verification campaigns: a generator
// (rand | gp-all | gp-std-xo) hunting one injected bug (or none) on a
// simulated MESI or TSO-CC machine, checked against a scenario's
// axiomatic model. Multi-sample runs are sharded across cores by the
// campaign fleet; -parallel 1 forces the sequential path (results are
// identical either way for a fixed seed).
//
// The verification target is a scenario (-list-scenarios to enumerate):
//
//	mcversi -scenario mesi-pso            # one scenario
//	mcversi -scenario mesi-tso,mesi-rmo   # sweep a subset
//	mcversi -scenario all                 # sweep every registered one
//
// Without -scenario the legacy -protocol/-bug flags select the paper's
// TSO target directly.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/service"
)

func main() {
	gen := flag.String("gen", "gp-all", "generator: rand | gp-all | gp-std-xo")
	proto := flag.String("protocol", "MESI", "protocol: MESI | TSO-CC")
	bug := flag.String("bug", "", "bug to inject (empty = none); -list for names")
	mem := flag.Int("mem", 8192, "test memory bytes (paper: 1024 or 8192)")
	budget := flag.Int("budget", 1000, "campaign budget in test-runs")
	samples := flag.Int("samples", 1, "number of samples (distinct seeds)")
	seed := flag.Int64("seed", 1, "base seed")
	parallel := flag.Int("parallel", 0, "fleet workers (0 = all cores, 1 = sequential)")
	timeout := flag.Duration("timeout", 0, "wall-clock limit for the whole fleet (0 = none)")
	stopOnFound := flag.Bool("stop-on-found", false, "cancel sibling samples once one finds the bug")
	islands := flag.Bool("islands", false, "GP island model: migrate elites between samples")
	migrate := flag.Int("migrate", 50, "island migration interval in test-runs")
	collective := flag.Bool("collective", true,
		"collective checking: dedupe executions by signature, one shared verdict memo per fleet (disable for naive A/B benchmarks)")
	storeDir := flag.String("store", "",
		"durable verdict store directory: signatures decided by earlier runs (or other processes on the same directory) are answered from disk; results are byte-identical either way")
	progress := flag.Bool("progress", false, "stream per-sample fleet events to stderr")
	list := flag.Bool("list", false, "list the 11 studied bugs and exit")
	scenarioFlag := flag.String("scenario", "",
		"verification scenario(s): a registered name, a comma-separated list, or 'all' (-list-scenarios for names); overrides -protocol/-bug")
	listScenarios := flag.Bool("list-scenarios", false, "list the registered scenarios and exit")
	remote := flag.String("remote", "",
		"submit the campaign to a mcversid service at this base URL instead of running locally")
	tenant := flag.String("tenant", "", "tenant id for -remote admission control")
	mergedOut := flag.String("merged-out", "",
		"write the canonical merged result JSON to this file (local runs use the same merge path as the service, so outputs are byte-comparable)")
	flag.Parse()

	if *list {
		for _, b := range mcversi.Bugs() {
			star := " "
			if b.Real {
				star = "*"
			}
			fmt.Printf("%s %-26s [%s] %s\n", star, b.Name, b.Protocol, b.Description)
		}
		return
	}
	if *listScenarios {
		for _, s := range mcversi.Scenarios() {
			fmt.Printf("%-12s %-28s %s\n", s.Name, s.ID(), s.Description)
		}
		return
	}

	var scens []mcversi.Scenario
	if *scenarioFlag != "" {
		names := strings.Split(*scenarioFlag, ",")
		if *scenarioFlag == "all" {
			scens = mcversi.Scenarios()
		} else {
			for _, name := range names {
				s, err := mcversi.ScenarioByName(strings.TrimSpace(name))
				if err != nil {
					fmt.Fprintln(os.Stderr, "mcversi:", err)
					os.Exit(2)
				}
				scens = append(scens, s)
			}
		}
	}

	var base mcversi.Scenario
	if len(scens) > 0 {
		if *islands {
			// Islands exchange chromosomes between populations bred for
			// one machine contract; scenario sweeps run different
			// contracts side by side, so the combination is rejected
			// rather than silently dropped.
			fmt.Fprintln(os.Stderr, "mcversi: -islands is not supported with -scenario sweeps")
			os.Exit(2)
		}
		base = scens[0]
	} else {
		base = mcversi.Scenario{Protocol: mcversi.Protocol(*proto), Model: "TSO"}
		if *bug != "" {
			base.Bugs = []string{*bug}
		}
	}
	cfg := mcversi.ScaledScenarioConfig(mcversi.GeneratorKind(*gen), base, *mem)
	cfg.MaxTestRuns = *budget

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *remote != "" || *mergedOut != "" {
		// Spec mode: the campaign travels as a serializable core.Spec,
		// either to a remote mcversid or through the local shard-merge
		// path — the two produce byte-identical merged output.
		if *islands || *stopOnFound {
			fmt.Fprintln(os.Stderr, "mcversi: -islands/-stop-on-found are not available with -remote/-merged-out (shards must be independent and deterministic)")
			os.Exit(2)
		}
		specScens := scens
		if len(specScens) == 0 {
			specScens = []mcversi.Scenario{base}
		}
		if *remote != "" && *storeDir != "" {
			// The store is a local directory; a remote daemon attaches its
			// own via mcversid -store.
			fmt.Fprintln(os.Stderr, "mcversi: -store is not available with -remote (use mcversid -store on the daemon)")
			os.Exit(2)
		}
		spec := core.NewSpec(cfg, specScens, *samples, *seed)
		runSpecMode(ctx, spec, specModeOptions{
			Remote: *remote, Tenant: *tenant, MergedOut: *mergedOut,
			Parallel: *parallel, Collective: *collective, Progress: *progress,
			StoreDir: *storeDir,
		})
		return
	}

	opts := mcversi.FleetOptions{
		Workers:           *parallel,
		StopOnFound:       *stopOnFound,
		Islands:           *islands,
		MigrationInterval: *migrate,
		Collective:        *collective,
		Obs:               *progress,
	}
	var vs *mcversi.DurableVerdictStore
	if *storeDir != "" {
		var verr error
		vs, verr = mcversi.OpenVerdictStore(*storeDir)
		if verr != nil {
			fmt.Fprintln(os.Stderr, "mcversi:", verr)
			os.Exit(2)
		}
		// Closed explicitly below: os.Exit on the error path would skip
		// a defer, and Close is what fsyncs the active segment.
		opts.Store = vs
	}
	var drained chan struct{}
	var events chan mcversi.FleetEvent
	if *progress {
		events = make(chan mcversi.FleetEvent, 64)
		drained = make(chan struct{})
		opts.Events = events
		go func() {
			defer close(drained)
			for ev := range events {
				state := "epoch"
				switch {
				case ev.Done && ev.Stopped:
					state = "stopped"
				case ev.Done:
					state = "done"
				}
				dedupe := ""
				if ev.Result.Dedupe.Checks > 0 {
					dedupe = fmt.Sprintf(", %.0f%% dedupe (%d unique sigs)",
						100*ev.Result.Dedupe.HitRate(), ev.Result.Dedupe.Unique)
				}
				scen := ""
				if ev.Scenario != "" {
					scen = " " + ev.Scenario
				}
				fmt.Fprintf(os.Stderr, "[fleet] sample %d%s %s: %d runs, %.1f%% coverage%s, %s\n",
					ev.Sample, scen, state, ev.Result.TestRuns, 100*ev.Result.TotalCoverage, dedupe, ev.Elapsed.Round(time.Millisecond))
			}
		}()
	}

	var (
		st  mcversi.FleetStats
		err error
	)
	found, totalRuns, totalSamples := 0, 0, 0
	if len(scens) > 0 {
		// Scenario sweep: one fleet across the whole matrix, results
		// grouped per scenario.
		var grouped [][]mcversi.CampaignResult
		grouped, st, err = mcversi.RunScenarioSweep(ctx, cfg, scens, *samples, *seed, opts)
		for si, results := range grouped {
			fmt.Printf("scenario %s (%s):\n", scens[si].Name, scens[si].ID())
			for i, r := range results {
				fmt.Printf("  sample %d: %s\n", i, r)
				totalRuns += r.TestRuns
				totalSamples++
				if r.Found {
					found++
					fmt.Printf("    %s\n", strings.TrimSpace(r.Detail))
				}
			}
		}
	} else {
		var results []mcversi.CampaignResult
		results, st, err = mcversi.RunSamplesFleet(ctx, cfg, *samples, *seed, opts)
		// On error (e.g. -timeout expiry) still report every sample's
		// tally — completed samples and partial ones — before exiting
		// nonzero.
		for i, r := range results {
			fmt.Printf("sample %d: %s\n", i, r)
			totalRuns += r.TestRuns
			totalSamples++
			if r.Found {
				found++
				fmt.Printf("  %s\n", strings.TrimSpace(r.Detail))
			}
		}
	}
	if events != nil {
		close(events)
		<-drained
	}
	fmt.Printf("\n%d/%d samples found a bug (%d workers, %d test-runs total, %s wall)\n",
		found, totalSamples, st.Workers, totalRuns, st.Wall.Round(time.Millisecond))
	if st.Dedupe.Checks > 0 {
		fmt.Printf("collective checking: %s\n", st.Dedupe)
	}
	if st.Fastpath.Checks > 0 {
		fmt.Printf("checker fast path: %s\n", st.Fastpath)
	}
	if st.UnionCoverage > 0 {
		fmt.Printf("fleet union coverage: %.1f%% of the transition table\n", 100*st.UnionCoverage)
	}
	if *progress {
		fmt.Fprintf(os.Stderr, "[obs] phase breakdown: %s\n", st.Obs)
	}
	if vs != nil {
		if cerr := vs.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "mcversi: verdict store:", cerr)
			os.Exit(1)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcversi:", err)
		os.Exit(1)
	}
}

type specModeOptions struct {
	Remote, Tenant, MergedOut string
	Parallel                  int
	Collective, Progress      bool
	// StoreDir is the durable verdict store directory (local spec runs
	// only; rejected with -remote before reaching here).
	StoreDir string
}

// renderSample writes one per-sample progress line to stderr in the
// same shape the local fleet's -progress stream uses, so remote SSE
// progress reads identically.
func renderSample(sample int, scen string, r mcversi.CampaignResult, elapsed time.Duration) {
	dedupe := ""
	if r.Dedupe.Checks > 0 {
		dedupe = fmt.Sprintf(", %.0f%% dedupe (%d unique sigs)",
			100*r.Dedupe.HitRate(), r.Dedupe.Unique)
	}
	el := ""
	if elapsed > 0 {
		el = ", " + elapsed.Round(time.Millisecond).String()
	}
	if scen != "" {
		scen = " " + scen
	}
	fmt.Fprintf(os.Stderr, "[fleet] sample %d%s done: %d runs, %.1f%% coverage%s%s\n",
		sample, scen, r.TestRuns, 100*r.TotalCoverage, dedupe, el)
}

// runSpecMode executes a spec campaign remotely (against mcversid) or
// locally (through the identical shard-merge path) and reports the
// merged result.
func runSpecMode(ctx context.Context, spec core.Spec, o specModeOptions) {
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "mcversi:", err)
		os.Exit(1)
	}

	var (
		merged fleet.Merged
		data   []byte
	)
	if o.Remote != "" {
		client := service.NewClient(o.Remote)
		id, err := client.Submit(ctx, o.Tenant, spec)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "mcversi: submitted campaign %s to %s (%d items)\n", id, o.Remote, spec.Items())
		if o.Progress {
			err := client.Events(ctx, id, func(ev service.Event) bool {
				switch ev.Type {
				case service.EventSample:
					if ev.Result != nil {
						renderSample(ev.Sample, ev.Scenario, *ev.Result, 0)
					}
				case service.EventLeased:
					fmt.Fprintf(os.Stderr, "[fleet] shard %s leased to %s\n", ev.Shard, ev.Worker)
				case service.EventExpired:
					fmt.Fprintf(os.Stderr, "[fleet] shard %s lease expired on %s, re-issuing\n", ev.Shard, ev.Worker)
				}
				return true
			})
			if err != nil {
				fail(err)
			}
		}
		if _, err := client.WaitDone(ctx, id, 100*time.Millisecond); err != nil {
			fail(err)
		}
		if data, err = client.ResultBytes(ctx, id); err != nil {
			fail(err)
		}
		if err := json.Unmarshal(data, &merged); err != nil {
			fail(err)
		}
	} else {
		// -progress also turns on phase spans: the same breakdown the
		// daemon's /statusz reports, printed locally. Merged bytes are
		// identical either way (spans ride outside CanonicalBytes).
		fopts := fleet.Options{Workers: o.Parallel, Collective: o.Collective, Obs: o.Progress}
		if o.StoreDir != "" {
			vs, err := mcversi.OpenVerdictStore(o.StoreDir)
			if err != nil {
				fail(err)
			}
			defer vs.Close()
			fopts.Store = vs
		}
		var drained chan struct{}
		if o.Progress {
			events := make(chan fleet.Event, 64)
			drained = make(chan struct{})
			fopts.Events = events
			go func() {
				defer close(drained)
				for ev := range events {
					if ev.Done {
						renderSample(ev.Sample, ev.Scenario, ev.Result, ev.Elapsed)
					}
				}
			}()
			defer func() {
				close(events)
				<-drained
			}()
		}
		var err error
		if merged, err = fleet.LocalMerged(ctx, spec, fopts); err != nil {
			fail(err)
		}
		if data, err = merged.CanonicalBytes(); err != nil {
			fail(err)
		}
		if o.Progress {
			fmt.Fprintf(os.Stderr, "[obs] phase breakdown: %s\n", merged.Obs)
		}
	}

	for si, scen := range spec.Scenarios {
		fmt.Printf("scenario %s (%s):\n", scen.Name, scen.ID())
		for j := 0; j < spec.Samples; j++ {
			r := merged.Results[si*spec.Samples+j]
			fmt.Printf("  sample %d: %s\n", j, r)
			if r.Found {
				fmt.Printf("    %s\n", strings.TrimSpace(r.Detail))
			}
		}
	}
	fmt.Printf("\n%d/%d samples found a bug (%d test-runs total)\n",
		merged.Stats.Found, merged.Stats.Items, merged.Stats.TestRuns)
	if merged.Stats.Dedupe.Checks > 0 {
		fmt.Printf("collective checking: %s\n", merged.Stats.Dedupe)
	}
	if merged.Fastpath.Checks > 0 {
		fmt.Printf("checker fast path: %s\n", merged.Fastpath)
	}
	if merged.Stats.UnionCoverage > 0 {
		fmt.Printf("fleet union coverage: %.1f%% of the transition table\n", 100*merged.Stats.UnionCoverage)
	}
	if o.MergedOut != "" {
		if err := os.WriteFile(o.MergedOut, data, 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "mcversi: wrote canonical merged result to %s (%d bytes)\n", o.MergedOut, len(data))
	}
}

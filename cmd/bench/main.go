// Command bench runs the repository's key micro-benchmarks in-process
// and emits a machine-readable JSON snapshot (BENCH_<n>.json), so the
// performance trajectory is comparable PR-over-PR without parsing `go
// test -bench` text output:
//
//	go run ./cmd/bench                 # writes BENCH_5.json
//	go run ./cmd/bench -out perf.json  # custom path
//	go run ./cmd/bench -out -          # stdout only
//	go run ./cmd/bench -smoke -gate    # CI: gated A/Bs only, fail on regression
//
// The checker A/B runs the exact workload of the CI-proven
// BenchmarkCollectiveChecker (internal/benchwork), and the derived
// checker_collective_speedup field records the naive/collective ratio
// (see EXPERIMENTS.md, "Collective vs naive checking"). The checker
// fast-path A/B (checker/exact-check vs checker/fastpath-check) times
// the pure decision procedures — full axiomatic check vs the
// vector-clock frontier + Kahn-wave fast path — over the same captured
// executions, asserting verdict agreement in-band before timing; the
// derived checker_fastpath_speedup and fastpath_conclusive_rate are
// gated (see EXPERIMENTS.md, "Checker fast path"). The scenario
// sweep benchmark drives a 4-scenario fleet (SC/TSO/PSO/RMO on MESI)
// end to end, so the scenario layer's overhead is tracked PR-over-PR
// (the derived e2e_testruns_per_sec is its sample-throughput reading).
// The coverage-hotpath A/B (coverage/record-legacy vs
// coverage/record-id) measures one full test-run's worth of transition
// recording plus the run-boundary fitness pass through the seed-style
// string-keyed tracker versus the interned, sharded engine. The
// event-kernel A/B (eventkernel/heap-schedule vs
// eventkernel/wheel-schedule) measures one burst of schedule+dispatch
// cycles through the seed's binary heap driven by the closure API
// versus the timing wheel's pooled ScheduleEvent path (see
// EXPERIMENTS.md, "Event kernel").
//
// The service A/B (service/local vs service/loopback-wN) runs the same
// campaign spec through the in-process shard merger and through a full
// mcversid loopback — HTTP submit, seed-range leases claimed by N
// remote-protocol workers, shard results over the wire, canonical
// merge — and the derived service_merge_overhead records the w1
// distributed tax over local (gated to ≤10%: the service must stay an
// orchestration layer, not a compute tax). Both sides use the same
// intra-shard parallelism so the delta is protocol+merge overhead, not
// scheduling width. service_campaigns_per_sec_wN /
// service_merged_runs_per_sec_wN track fleet scaling at 1/2/4 workers.
//
// The obs A/B (fleet/obs-off vs fleet/obs-on) runs the service spec
// through the identical local merge path with phase-span
// instrumentation off and on in order-alternating pairs, scoring the
// median of per-pair ratios so runner noise cancels instead of
// masquerading as overhead, and asserts the two sides' canonical
// merged bytes are identical. The derived obs_overhead is gated to
// ≤2%: observability must be a side channel, not a tax (see
// EXPERIMENTS.md, "Observability overhead").
//
// -smoke restricts the run to the gated A/Bs (checker fast path,
// coverage hot path, event kernel, service overhead, obs overhead) so
// CI gets a fast regression signal; -gate exits non-zero when a
// derived metric falls below its recorded floor or above its recorded
// ceiling.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/benchwork"
	"repro/internal/checker"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/fleet"
	"repro/internal/gp"
	"repro/internal/host"
	"repro/internal/memmodel"
	"repro/internal/memsys"
	"repro/internal/relation"
	"repro/internal/scenario"
	"repro/internal/service"
	"repro/internal/testgen"
)

// Gates: the recorded floors CI holds the derived metrics to (-gate).
// Set below the steady-state readings (coverage ≈4×/13×, event kernel
// ≈10–25×/hundreds) to absorb runner noise while still catching a real
// regression — e.g. an accidental allocation or a heap fallback on the
// hot path.
var gates = map[string]float64{
	"coverage_hotpath_speedup":     3.0,
	"coverage_hotpath_alloc_ratio": 10.0,
	"event_kernel_speedup":         2.0,
	"event_kernel_alloc_ratio":     10.0,
	// The fast-path checker must decide the workload at least 2× faster
	// than the exact checker, and must stay conclusive on at least 95%
	// of supported-model checks — a fallback-rate regression silently
	// converts the speedup back into exact-checker time.
	"checker_fastpath_speedup": 2.0,
	"fastpath_conclusive_rate": 0.95,
}

// gatesMax are ceilings: derived metrics that must stay BELOW the
// recorded bound. The distributed service may cost at most 10% over the
// identical local merge.
var gatesMax = map[string]float64{
	"service_merge_overhead": 0.10,
	// Phase-span instrumentation may cost at most 2% wall clock over the
	// identical uninstrumented campaign (paired-ratio-median A/B).
	"obs_overhead": 0.02,
}

// Snapshot is the BENCH_<n>.json schema.
type Snapshot struct {
	Schema     int                `json:"schema"`
	GoVersion  string             `json:"go_version"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Benchmarks []Bench            `json:"benchmarks"`
	Derived    map[string]float64 `json:"derived"`
}

// Bench is one benchmark's result.
type Bench struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func run(name string, fn func(b *testing.B)) Bench {
	r := testing.Benchmark(fn)
	out := Bench{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if len(r.Extra) > 0 {
		out.Metrics = make(map[string]float64, len(r.Extra))
		for k, v := range r.Extra {
			out.Metrics[k] = v
		}
	}
	fmt.Fprintf(os.Stderr, "%-28s %12.0f ns/op  (%d iterations)\n", name, out.NsPerOp, out.Iterations)
	return out
}

// layeredDAG mirrors the relation package's benchmark graph: a dense
// forward-edged DAG shaped like a GHB graph over a long execution.
func layeredDAG(layers, width int) *relation.Relation {
	r := relation.New()
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			from := relation.EventID(l*width + i)
			r.Add(from, relation.EventID((l+1)*width+i))
			r.Add(from, relation.EventID((l+1)*width+(i+1)%width))
		}
	}
	return r
}

// sweepScenarios returns the 4-model MESI column of the registry.
func sweepScenarios() []scenario.Scenario {
	var out []scenario.Scenario
	for _, name := range []string{"mesi-sc", "mesi-tso", "mesi-pso", "mesi-rmo"} {
		s, err := scenario.ByName(name)
		if err != nil {
			panic(err)
		}
		out = append(out, s)
	}
	return out
}

// sweepConfig is a small, fixed campaign configuration for the sweep
// benchmark: rand generator, 10 test-runs, tiny tests.
func sweepConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Generator = core.GenRandom
	cfg.Test = testgen.Config{Size: 48, Threads: 8, Layout: memsys.MustLayout(1024, 16)}
	cfg.GP = gp.PaperParams()
	cfg.Coverage = coverage.DefaultParams()
	cfg.Host = host.Options{Iterations: 2, Barrier: host.HostBarrier, MaxTicksPerIteration: 30_000_000}
	cfg.MaxTestRuns = 10
	return cfg
}

// serviceShardSize is the lease granularity of the service A/B. Both
// sides run items sequentially (fleet workers = 1): with intra-shard
// parallelism the loopback path pays a straggler barrier at each shard
// boundary that the continuously-pipelined local path does not, which
// would fold machine-dependent scheduling noise into what is meant to
// be a pure protocol+merge overhead reading.
const serviceShardSize = 4

// serviceSpec is the campaign both sides of the service A/B run:
// 2 scenarios × 4 samples (two shards), sized so per-shard compute
// dwarfs the per-request HTTP cost.
func serviceSpec() core.Spec {
	var scens []scenario.Scenario
	for _, name := range []string{"mesi-tso", "mesi-pso"} {
		s, err := scenario.ByName(name)
		if err != nil {
			panic(err)
		}
		scens = append(scens, s)
	}
	return core.NewSpec(sweepConfig(), scens, 4, 7)
}

// benchService measures end-to-end campaigns through a loopback
// mcversid: one HTTP server, n workers speaking the remote lease
// protocol, one campaign per op (submit → drain → fetch merged bytes).
func benchService(spec core.Spec, n int) func(b *testing.B) {
	return func(b *testing.B) {
		svc, err := service.New(service.Config{ShardSize: serviceShardSize, FleetWorkers: 1})
		if err != nil {
			panic(err)
		}
		srv := httptest.NewServer(svc.Handler())
		defer srv.Close()
		client := service.NewClient(srv.URL)
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_ = service.RunWorker(ctx, client, service.WorkerOptions{
					Name:         fmt.Sprintf("bench-%d", i),
					Poll:         time.Millisecond,
					FleetWorkers: 1,
				})
			}(i)
		}
		defer func() {
			b.StopTimer()
			cancel()
			wg.Wait()
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id, err := client.Submit(ctx, "bench", spec)
			if err != nil {
				panic(err)
			}
			if _, err := client.WaitDone(ctx, id, time.Millisecond); err != nil {
				panic(err)
			}
			if _, err := client.ResultBytes(ctx, id); err != nil {
				panic(err)
			}
		}
	}
}

// obsABRounds is the paired-round depth of the obs overhead A/B.
const obsABRounds = 21

// obsOverhead measures phase-span instrumentation cost on the service
// campaign spec: identical local-merge runs with Obs off and on. The
// true cost is a fraction of a percent while round-to-round wall-clock
// noise on a shared runner is ±5–10%, so the estimator must cancel
// noise rather than hope to outrun it, on two axes:
//
//   - Pairing: rounds run as off+on pairs with alternating order, each
//     pair yields an on/off ratio, and the overhead is the MEDIAN of
//     the paired ratios — pairing cancels low-frequency drift
//     (thermal, steal time) that hits both halves of a pair equally,
//     and the median discards the occasional preempted round that a
//     min-of-N or a mean would let dominate.
//   - CPU time: each ratio is computed over consumed CPU time
//     (getrusage), not wall clock — instrumentation cost is CPU work,
//     while the dominant noise (preemption, steal) inflates only wall
//     time. Falls back to wall pairing where rusage is unavailable.
//   - No GC inside timed regions: automatic collection is disabled for
//     the A/B and a full collect runs before every timed campaign, so
//     a cycle landing inside one side of a pair cannot masquerade as
//     (or mask) instrumentation cost.
//
// It also asserts the two sides' canonical merged bytes are
// byte-identical, the tentpole invariant. The recorded
// fleet/obs-{off,on} rows are wall-clock medians (ns/op keeps its
// usual meaning); only the derived ratio uses CPU time.
func obsOverhead(spec core.Spec) (offNs, onNs, overhead float64) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	runOnce := func(obsOn bool) (wallNs, cpuNs float64, data []byte) {
		runtime.GC()
		c0, cpuOK := processCPUTime()
		t0 := time.Now()
		m, err := fleet.LocalMerged(context.Background(), spec,
			fleet.Options{Workers: 1, Collective: true, Obs: obsOn})
		if err != nil {
			panic(err)
		}
		wall := time.Since(t0)
		c1, _ := processCPUTime()
		data, err = m.CanonicalBytes()
		if err != nil {
			panic(err)
		}
		cpu := wall
		if cpuOK {
			cpu = c1 - c0
		}
		return float64(wall.Nanoseconds()), float64(cpu.Nanoseconds()), data
	}
	// Warm both sides twice — the first rounds also grow the heap to
	// its steady state, which would otherwise read as overhead on
	// whichever side ran first — and prove byte identity while at it.
	for i := 0; i < 2; i++ {
		_, _, offBytes := runOnce(false)
		_, _, onBytes := runOnce(true)
		if !bytes.Equal(offBytes, onBytes) {
			panic("bench: instrumented campaign produced different canonical bytes")
		}
	}
	offs := make([]float64, obsABRounds)
	ons := make([]float64, obsABRounds)
	ratios := make([]float64, obsABRounds)
	for i := 0; i < obsABRounds; i++ {
		var wallOff, wallOn, cpuOff, cpuOn float64
		if i%2 == 0 {
			wallOff, cpuOff, _ = runOnce(false)
			wallOn, cpuOn, _ = runOnce(true)
		} else {
			wallOn, cpuOn, _ = runOnce(true)
			wallOff, cpuOff, _ = runOnce(false)
		}
		offs[i] = wallOff
		ons[i] = wallOn
		ratios[i] = cpuOn / cpuOff
	}
	return median(offs), median(ons), median(ratios) - 1
}

// median of xs (xs is scratch: sorted in place).
func median(xs []float64) float64 {
	sort.Float64s(xs)
	if n := len(xs); n%2 == 1 {
		return xs[n/2]
	} else {
		return (xs[n/2-1] + xs[n/2]) / 2
	}
}

func main() {
	out := flag.String("out", "BENCH_8.json", "snapshot path (- for stdout only)")
	smoke := flag.Bool("smoke", false, "run only the gated A/B benchmarks (CI regression signal)")
	gate := flag.Bool("gate", false, "exit non-zero if a derived metric falls below its recorded gate")
	flag.Parse()

	snap := Snapshot{
		Schema:     1,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Derived:    map[string]float64{},
	}
	progs, orders := benchwork.CheckerWorkload()
	if !*smoke {
		dag := layeredDAG(100, 8)
		snap.Benchmarks = append(snap.Benchmarks,
			run("checker/naive", benchwork.BenchChecker(false, progs, orders)),
			run("checker/collective", benchwork.BenchChecker(true, progs, orders)),
			run("relation/acyclic-dfs", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, ok := dag.AcyclicCheck(); !ok {
						panic("layered DAG reported cyclic")
					}
				}
			}),
			run("relation/acyclic-incremental", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					topo := relation.NewTopo(800)
					if _, ok := topo.AddRelation(dag); !ok {
						panic("layered DAG reported cyclic")
					}
				}
			}),
			run("collective/signature", func(b *testing.B) {
				rec := checker.NewRecorder(memmodel.TSO{})
				benchwork.ReplaySerial(rec, progs, orders[0])
				// Capture the execution, then let EndIteration resolve its
				// rf and co in place: the hash covers the complete
				// execution, i.e. the true per-hit signature cost.
				x := rec.Execution()
				if v := rec.EndIteration(); v != nil {
					panic(v)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					collective.Signature(x)
				}
			}),
		)
	}
	// Checker fast-path A/B: pure decision procedure over the captured
	// workload executions — verdict agreement with the exact checker is
	// asserted in-band before timing. Gated, so it runs in smoke too.
	fastExecs := benchwork.FastcheckExecutions(progs, orders)
	snap.Benchmarks = append(snap.Benchmarks,
		run("checker/exact-check", benchwork.BenchExactCheck(fastExecs, memmodel.TSO{})),
		run("checker/fastpath-check", benchwork.BenchFastpathCheck(fastExecs, memmodel.TSO{})),
	)
	snap.Benchmarks = append(snap.Benchmarks,
		run("coverage/record-legacy", benchwork.BenchCoverage(false)),
		run("coverage/record-id", benchwork.BenchCoverage(true)),
		run("eventkernel/heap-schedule", benchwork.BenchEventKernel(true)),
		run("eventkernel/wheel-schedule", benchwork.BenchEventKernel(false)),
	)
	// Service A/B: the gated local-vs-loopback pair always runs; the
	// 2- and 4-worker scaling points only in full mode.
	svcSpec := serviceSpec()
	svcRuns := svcSpec.Items() * svcSpec.MaxTestRuns
	snap.Benchmarks = append(snap.Benchmarks,
		run("service/local", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := fleet.LocalMerged(context.Background(), svcSpec,
					fleet.Options{Workers: 1, Collective: true})
				if err != nil {
					panic(err)
				}
				if _, err := m.CanonicalBytes(); err != nil {
					panic(err)
				}
			}
		}),
		run("service/loopback-w1", benchService(svcSpec, 1)),
	)
	// Obs A/B: hand-rolled paired rounds instead of testing.Benchmark,
	// which would run the two sides back to back and let machine drift
	// register as instrumentation cost.
	obsOffNs, obsOnNs, obsTax := obsOverhead(svcSpec)
	for _, bm := range []Bench{
		{Name: "fleet/obs-off", Iterations: obsABRounds, NsPerOp: obsOffNs},
		{Name: "fleet/obs-on", Iterations: obsABRounds, NsPerOp: obsOnNs},
	} {
		fmt.Fprintf(os.Stderr, "%-28s %12.0f ns/op  (median of %d)\n", bm.Name, bm.NsPerOp, bm.Iterations)
		snap.Benchmarks = append(snap.Benchmarks, bm)
	}
	// Instrumented-over-uninstrumented wall-clock tax of phase spans:
	// the median of per-pair on/off ratios, not the ratio of the
	// recorded medians — the pairing is what cancels drift (negative
	// readings are runner noise: the true cost is below measurement
	// resolution).
	snap.Derived["obs_overhead"] = obsTax
	if !*smoke {
		snap.Benchmarks = append(snap.Benchmarks,
			run("service/loopback-w2", benchService(svcSpec, 2)),
			run("service/loopback-w4", benchService(svcSpec, 4)),
		)
	}
	// sweepTestRuns is the simulated test-run volume of one
	// scenario/sweep4 op, the basis of e2e_testruns_per_sec.
	sweepTestRuns := 0
	if !*smoke {
		scens := sweepScenarios()
		cfg := sweepConfig()
		sweepTestRuns = len(scens) * cfg.MaxTestRuns
		snap.Benchmarks = append(snap.Benchmarks,
			run("scenario/sweep4", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := fleet.ScenarioSweep(context.Background(), cfg, scens, 1, 7,
						fleet.Options{Collective: true}); err != nil {
						panic(err)
					}
				}
			}),
		)
	}
	byName := map[string]Bench{}
	for _, bm := range snap.Benchmarks {
		byName[bm.Name] = bm
	}
	// allocRatio guards the denominator: the fast side of each A/B is
	// allocation-free, so a zero rounds up to "at least N×".
	allocRatio := func(slow, fast Bench) float64 {
		denom := fast.AllocsPerOp
		if denom == 0 {
			denom = 1
		}
		return float64(slow.AllocsPerOp) / float64(denom)
	}
	if c, n := byName["checker/collective"], byName["checker/naive"]; c.NsPerOp > 0 {
		snap.Derived["checker_collective_speedup"] = n.NsPerOp / c.NsPerOp
	}
	if inc, dfs := byName["relation/acyclic-incremental"], byName["relation/acyclic-dfs"]; inc.NsPerOp > 0 {
		snap.Derived["relation_incremental_vs_dfs"] = dfs.NsPerOp / inc.NsPerOp
	}
	if fast, exact := byName["checker/fastpath-check"], byName["checker/exact-check"]; fast.NsPerOp > 0 {
		snap.Derived["checker_fastpath_speedup"] = exact.NsPerOp / fast.NsPerOp
		snap.Derived["fastpath_conclusive_rate"] = fast.Metrics["conclusive-%"] / 100
	}
	if id, legacy := byName["coverage/record-id"], byName["coverage/record-legacy"]; id.NsPerOp > 0 {
		snap.Derived["coverage_hotpath_speedup"] = legacy.NsPerOp / id.NsPerOp
		snap.Derived["coverage_hotpath_alloc_ratio"] = allocRatio(legacy, id)
	}
	if wheel, heap := byName["eventkernel/wheel-schedule"], byName["eventkernel/heap-schedule"]; wheel.NsPerOp > 0 {
		snap.Derived["event_kernel_speedup"] = heap.NsPerOp / wheel.NsPerOp
		snap.Derived["event_kernel_alloc_ratio"] = allocRatio(heap, wheel)
	}
	if sweep := byName["scenario/sweep4"]; sweep.NsPerOp > 0 {
		// End-to-end sample throughput: simulated test-runs per
		// wall-clock second through the full generate–execute–verify
		// loop (machine, checker, coverage and fleet layers included).
		snap.Derived["e2e_testruns_per_sec"] = float64(sweepTestRuns) / (sweep.NsPerOp * 1e-9)
	}
	if w1, local := byName["service/loopback-w1"], byName["service/local"]; w1.NsPerOp > 0 && local.NsPerOp > 0 {
		// The distributed tax: how much slower one remote worker over
		// loopback HTTP is than the identical in-process merge.
		snap.Derived["service_merge_overhead"] = w1.NsPerOp/local.NsPerOp - 1
	}
	for _, n := range []int{1, 2, 4} {
		if bm := byName[fmt.Sprintf("service/loopback-w%d", n)]; bm.NsPerOp > 0 {
			snap.Derived[fmt.Sprintf("service_campaigns_per_sec_w%d", n)] = 1e9 / bm.NsPerOp
			snap.Derived[fmt.Sprintf("service_merged_runs_per_sec_w%d", n)] = float64(svcRuns) * 1e9 / bm.NsPerOp
		}
	}

	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out != "-" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	os.Stdout.Write(enc)

	if *gate {
		failed := false
		check := func(name string, bound float64, kind string) {
			got, ok := snap.Derived[name]
			if !ok {
				// Every gated metric is produced in both full and smoke
				// modes; an absent one means a benchmark was renamed or
				// dropped, which must not silently disable the gate.
				fmt.Fprintf(os.Stderr, "bench: GATE FAILED: %s was not measured\n", name)
				failed = true
				return
			}
			broken := (kind == "floor" && got < bound) || (kind == "ceiling" && got > bound)
			if broken {
				fmt.Fprintf(os.Stderr, "bench: GATE FAILED: %s = %.2f, %s %.2f\n", name, got, kind, bound)
				failed = true
			} else {
				fmt.Fprintf(os.Stderr, "bench: gate ok: %s = %.2f (%s %.2f)\n", name, got, kind, bound)
			}
		}
		for name, floor := range gates {
			check(name, floor, "floor")
		}
		for name, ceiling := range gatesMax {
			check(name, ceiling, "ceiling")
		}
		if failed {
			os.Exit(1)
		}
	}
}

//go:build unix

package main

import (
	"syscall"
	"time"
)

// processCPUTime returns the process's consumed CPU time (user+sys).
// The obs A/B gates on CPU-time ratios because instrumentation cost is
// CPU work: wall clock on a shared runner is inflated by preemption
// and steal time that CPU accounting never sees.
func processCPUTime() (time.Duration, bool) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, false
	}
	u := time.Duration(ru.Utime.Sec)*time.Second + time.Duration(ru.Utime.Usec)*time.Microsecond
	s := time.Duration(ru.Stime.Sec)*time.Second + time.Duration(ru.Stime.Usec)*time.Microsecond
	return u + s, true
}

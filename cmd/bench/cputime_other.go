//go:build !unix

package main

import "time"

// processCPUTime is unavailable off unix; the obs A/B falls back to
// wall-clock pairing.
func processCPUTime() (time.Duration, bool) {
	return 0, false
}

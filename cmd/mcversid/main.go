// Command mcversid is the McVerSi campaign service daemon: an
// HTTP/JSON job queue for verification campaigns with admission
// control, seed-range leases for a distributed worker fleet, and a
// byte-deterministic shard merger.
//
//	mcversid -listen :8433 -workers 2 -checkpoint /var/lib/mcversid
//
// Campaigns are submitted as serialized core.Spec documents (see
// cmd/mcversi -remote for the turnkey client). Work is executed by the
// embedded worker pool (-workers) and/or remote cmd/mcversi-worker
// processes; merged results are byte-identical regardless of the mix.
//
// Observability rides on the same listener: GET /metrics serves the
// Prometheus text exposition and GET /statusz a JSON status page with
// per-campaign phase breakdowns. -debug-addr starts a second listener
// with net/http/pprof (opt-in so profiling endpoints never share the
// public port).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/collective/store"
	"repro/internal/service"
)

func main() {
	listen := flag.String("listen", ":8433", "HTTP listen address")
	workers := flag.Int("workers", 1, "embedded worker count (0 = remote workers only)")
	parallel := flag.Int("parallel", 0, "intra-shard fleet workers per embedded worker (0 = all cores)")
	shardSize := flag.Int("shard-size", 0, "lease granularity in items (0 = default)")
	leaseTTL := flag.Duration("lease-ttl", 0, "lease TTL before a silent worker's range is re-issued (0 = default 30s)")
	maxActive := flag.Int("max-active", 0, "concurrently running campaigns (0 = default)")
	maxQueued := flag.Int("max-queued", 0, "queued campaign cap (0 = default)")
	tenantPending := flag.Int("tenant-pending", 0, "per-tenant queued+running cap (0 = default)")
	maxItems := flag.Int("max-items", 0, "per-campaign item cap (0 = default)")
	maxAttempts := flag.Int("max-attempts", 0, "lease re-issues per shard before the campaign fails (0 = default)")
	checkpoint := flag.String("checkpoint", "", "durable campaign directory (empty = in-memory only)")
	storeDir := flag.String("store", "", "durable verdict store directory shared by the embedded workers (empty = in-RAM memos only)")
	retain := flag.Int("retain", 0, "finished campaigns kept before the oldest are evicted (0 = default 64)")
	debugAddr := flag.String("debug-addr", "", "net/http/pprof listen address (empty = disabled)")
	flag.Parse()

	cfg := service.Config{
		MaxActive:        *maxActive,
		MaxQueued:        *maxQueued,
		TenantMaxPending: *tenantPending,
		MaxItems:         *maxItems,
		ShardSize:        *shardSize,
		LeaseTTL:         *leaseTTL,
		MaxAttempts:      *maxAttempts,
		FleetWorkers:     *parallel,
		CheckpointDir:    *checkpoint,
		RetainTerminal:   *retain,
	}
	var vstore *store.Store
	if *storeDir != "" {
		var err error
		vstore, err = store.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcversid:", err)
			os.Exit(1)
		}
		cfg.VerdictStore = vstore
	}
	svc, err := service.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcversid:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	wg := svc.StartWorkers(ctx, *workers)

	// Reap leases held by dead workers even when no live worker is
	// polling to trigger the lazy path.
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				if n := svc.ExpireLeases(); n > 0 {
					fmt.Fprintf(os.Stderr, "mcversid: re-issued %d expired lease(s)\n", n)
				}
			}
		}
	}()

	// Profiling stays off the public port: pprof registers itself on
	// http.DefaultServeMux, which only this opt-in listener serves.
	if *debugAddr != "" {
		go func() {
			fmt.Fprintf(os.Stderr, "mcversid: pprof on %s\n", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "mcversid: pprof:", err)
			}
		}()
	}

	srv := &http.Server{Addr: *listen, Handler: svc.Handler()}
	go func() {
		<-ctx.Done()
		// Graceful drain: flip mcversid_draining, log what is in flight
		// (leases are simply abandoned — their ranges re-run to identical
		// bytes; queued/running campaigns recover from checkpoints).
		d := svc.Drain()
		fmt.Fprintf(os.Stderr, "mcversid: draining: %d lease(s) in flight, %d queued + %d running campaign(s)\n",
			d.Leases, d.Queued, d.Running)
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
	}()

	fmt.Fprintf(os.Stderr, "mcversid: listening on %s (%d embedded workers)\n", *listen, *workers)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "mcversid:", err)
		os.Exit(1)
	}
	wg.Wait()
	if vstore != nil {
		if err := vstore.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "mcversid: verdict store:", err)
			os.Exit(1)
		}
	}
}

// Command tables regenerates the paper's evaluation tables (4, 5 and 6)
// at a configurable scale, plus the scenario-matrix report (-table
// matrix): litmus-shape discrimination across SC/TSO/PSO/RMO and a
// bug-free soundness smoke over every registered scenario. See
// EXPERIMENTS.md for paper-vs-measured.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bugs"
	"repro/internal/eval"
)

func main() {
	table := flag.String("table", "4", "table to regenerate: 4, 5, 6 or matrix")
	full := flag.Bool("full", false, "use the full reproduction scale (slower)")
	parallel := flag.Int("parallel", 0, "fleet workers sharding table cells (0 = all cores, 1 = sequential)")
	flag.Parse()

	sc := eval.QuickScale()
	if *full {
		sc = eval.FullScale()
	}
	sc.Parallel = *parallel
	var err error
	switch *table {
	case "4":
		err = eval.Table4(os.Stdout, eval.Columns(), bugs.All(), sc)
	case "5":
		err = eval.Table5(os.Stdout, eval.Columns(), bugs.All(), sc, []int{100, 400, 1000})
	case "6":
		sc.Samples = 2
		err = eval.Table6(os.Stdout, eval.Columns(), sc)
	case "matrix":
		err = eval.ScenarioMatrix(os.Stdout, sc)
	default:
		err = fmt.Errorf("unknown table %q (4, 5, 6 or matrix)", *table)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

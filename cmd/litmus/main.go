// Command litmus generates the diy-style x86-TSO litmus suite and
// optionally runs it against the simulated machine.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	show := flag.Bool("show", false, "print the generated suite and exit")
	proto := flag.String("protocol", "MESI", "protocol: MESI | TSO-CC")
	bug := flag.String("bug", "", "bug to inject (empty = none)")
	passes := flag.Int("passes", 20, "whole-suite passes")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	suite := mcversi.LitmusSuite()
	if *show {
		for i, t := range suite {
			fmt.Printf("#%d %s", i+1, t)
		}
		fmt.Printf("%d tests\n", len(suite))
		return
	}
	cfg := mcversi.DefaultLitmusConfig(mcversi.Protocol(*proto))
	cfg.MaxPasses = *passes
	res, err := mcversi.RunLitmus(cfg, *bug, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "litmus:", err)
		os.Exit(1)
	}
	if res.Found {
		fmt.Printf("FOUND by %s via %s after %d executions (%.4f sim-s)\n  %s\n",
			res.TestName, res.Source, res.Executions, res.SimTicks.Seconds(), res.Detail)
		return
	}
	fmt.Printf("no forbidden outcome in %d passes (%d executions, %.4f sim-s)\n",
		res.Passes, res.Executions, res.SimTicks.Seconds())
}

// Litmusrun: the diy-litmus baseline of §5.2.2 — generate the x86-TSO
// suite from critical cycles, then run it self-checking against a
// machine with a litmus-visible bug (SQ+no-FIFO) and a litmus-invisible
// one (MESI,LQ+S,Replacement), reproducing the Table 4 contrast.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	suite := mcversi.LitmusSuite()
	fmt.Printf("generated %d x86-TSO litmus tests; the classics:\n", len(suite))
	for _, t := range suite {
		switch t.Name {
		case "MP", "SB", "2+2W", "IRIW", "SB+mfences":
			fmt.Print(t)
		}
	}

	for _, bug := range []string{"SQ+no-FIFO", "MESI,LQ+S,Replacement"} {
		cfg := mcversi.DefaultLitmusConfig(mcversi.MESI)
		cfg.MaxPasses = 8
		res, err := mcversi.RunLitmus(cfg, bug, 3)
		if err != nil {
			log.Fatal(err)
		}
		if res.Found {
			fmt.Printf("%-24s: FOUND by %s via %s (%d executions)\n", bug, res.TestName, res.Source, res.Executions)
		} else {
			fmt.Printf("%-24s: not found in %d passes (litmus-invisible, as in Table 4)\n", bug, res.Passes)
		}
	}
}

// Bughunt: the headline McVerSi workflow — the GP generator with the
// selective crossover (McVerSi-ALL) hunting a replacement bug that only
// manifests with the eviction-heavy 8KB test memory (§6.1), comparing
// against the pseudo-random baseline under the same budget.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const bug = "MESI,LQ+S,Replacement"
	for _, gen := range []mcversi.GeneratorKind{mcversi.GenGPAll, mcversi.GenRandom} {
		cfg := mcversi.ScaledCampaignConfig(gen, mcversi.MESI, bug, 8192)
		cfg.Seed = 2
		cfg.MaxTestRuns = 900
		res, err := mcversi.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s hunting %s: %s\n", gen, bug, res)
	}
	fmt.Println()
	fmt.Println("The same bug is invisible at 1KB (no capacity evictions, Table 4):")
	cfg := mcversi.ScaledCampaignConfig(mcversi.GenGPAll, mcversi.MESI, bug, 1024)
	cfg.Seed = 2
	cfg.MaxTestRuns = 300
	res, err := mcversi.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s at 1KB: %s\n", mcversi.GenGPAll, res)
}

// Quickstart: Figure 1's message-passing example, checked two ways —
// first as a pure axiomatic question (is the outcome forbidden under
// TSO/SC?), then hunted live on the simulated machine with the LQ+no-TSO
// bug injected, which makes the forbidden outcome reachable.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// The litmus generator materializes MP from its critical cycle and
	// our own axiomatic checker confirms the outcome is forbidden.
	for _, t := range mcversi.LitmusSuite() {
		if t.Name == "MP" {
			fmt.Println("Figure 1, message passing, as generated from its critical cycle:")
			fmt.Println(t)
		}
	}

	// Hunt the canonical pipeline bug with pseudo-random tests: the LQ
	// ignores forwarded invalidations, so speculative loads commit
	// stale values and the checker sees the MP-style cycle.
	cfg := mcversi.ScaledCampaignConfig(mcversi.GenRandom, mcversi.MESI, "LQ+no-TSO", 1024)
	cfg.Seed = 1
	cfg.MaxTestRuns = 200
	res, err := mcversi.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("campaign:", res)
	if res.Found {
		fmt.Println("violation:", res.Detail)
	}
}

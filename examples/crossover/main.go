// Crossover: Figure 2's worked example — two parent tests with known
// fitaddrs recombined by Algorithm 1's selective crossover. Memory
// operations on fit addresses are always inherited; slots neither parent
// claims regenerate (directed mutation).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/gp"
	"repro/internal/memsys"
	"repro/internal/testgen"
)

func main() {
	layout := memsys.MustLayout(512, 16)
	gen, err := mcversi.NewRandomTestGenerator(testgen.Config{
		Size: 8, Threads: 2, Layout: layout,
	}, 42)
	if err != nil {
		log.Fatal(err)
	}
	params := mcversi.PaperGPParams()
	params.PopulationSize = 2
	engine, err := gp.New(params, gen, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}

	pool := layout.Pool()
	a, b := pool[0], pool[1]
	c := pool[2]

	parent1 := engine.Next()
	// Parent-1's evaluation found addresses {a, b} highly racy.
	engine.Feedback(&gp.Individual{Test: parent1, Fitness: 0.6, NDT: 2.4,
		FitAddrs: map[memsys.Addr]bool{a: true, b: true}})
	parent2 := engine.Next()
	// Parent-2's fitaddrs: {a, c}.
	engine.Feedback(&gp.Individual{Test: parent2, Fitness: 0.5, NDT: 2.1,
		FitAddrs: map[memsys.Addr]bool{a: true, c: true}})

	fmt.Println("Parent-1 (fitaddrs {a,b}):")
	fmt.Print(parent1)
	fmt.Println("Parent-2 (fitaddrs {a,c}):")
	fmt.Print(parent2)
	fmt.Println("Two children from the selective crossover:")
	for i := 0; i < 2; i++ {
		child := engine.Next()
		fmt.Printf("Child-%d:\n%s", i+1, child)
		engine.Feedback(&gp.Individual{Test: child, Fitness: 0.4, NDT: 2.0,
			FitAddrs: map[memsys.Addr]bool{a: true}})
	}
}

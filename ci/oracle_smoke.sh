#!/usr/bin/env bash
# Oracle smoke: pipe the litmus known-answer corpus through the real
# cmd/check binary in every ingestion mode — text file, binary file,
# stdin, parallel fan-out, and cold/warm durable store — and byte-diff
# the NDJSON verdicts against the committed golden
# (ci/oracle_golden.json). The golden is what the in-process checker
# produces (cmd/check's own tests assert that equivalence), so a diff
# here means the external-oracle path drifted from the library.
#
# cmd/check exits 1 when any verdict is INVALID; the corpus contains
# forbidden outcomes on purpose, so 1 is the expected status and only
# 2 (operational error) fails the smoke.
set -euo pipefail

WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT

GOLDEN=ci/oracle_golden.json

go build -o "$WORKDIR" ./cmd/check

# check_json <out> <args...>: run check -json, requiring exit 0 or 1.
check_json() {
  out=$1
  shift
  status=0
  "$WORKDIR/check" -json "$@" >"$out" || status=$?
  if [ "$status" -gt 1 ]; then
    echo "FAIL: check $* exited $status" >&2
    exit 1
  fi
}

"$WORKDIR/check" -emit-corpus text >"$WORKDIR/corpus.mctrace"
"$WORKDIR/check" -emit-corpus binary >"$WORKDIR/corpus.mctrace.bin"

check_json "$WORKDIR/text.json" -model all "$WORKDIR/corpus.mctrace"
if ! cmp "$GOLDEN" "$WORKDIR/text.json"; then
  echo "FAIL: text-corpus verdicts differ from $GOLDEN" >&2
  exit 1
fi

check_json "$WORKDIR/binary.json" -model all "$WORKDIR/corpus.mctrace.bin"
cmp "$GOLDEN" "$WORKDIR/binary.json" || { echo "FAIL: binary-corpus verdicts differ" >&2; exit 1; }

check_json "$WORKDIR/stdin.json" -model all - <"$WORKDIR/corpus.mctrace"
cmp "$GOLDEN" "$WORKDIR/stdin.json" || { echo "FAIL: stdin verdicts differ" >&2; exit 1; }

check_json "$WORKDIR/parallel.json" -model all -parallel 4 "$WORKDIR/corpus.mctrace"
cmp "$GOLDEN" "$WORKDIR/parallel.json" || { echo "FAIL: parallel verdicts differ" >&2; exit 1; }

check_json "$WORKDIR/exact.json" -model all -exact "$WORKDIR/corpus.mctrace"
cmp "$GOLDEN" "$WORKDIR/exact.json" || { echo "FAIL: exact-mode verdicts differ" >&2; exit 1; }

# Durable store: a cold run populates the store, a warm run answers
# from it. Verdict bytes must not move, and the warm run must report
# durable hits on its progress line.
status=0
"$WORKDIR/check" -json -model all -store "$WORKDIR/verdicts" "$WORKDIR/corpus.mctrace" >"$WORKDIR/cold.json" || status=$?
[ "$status" -le 1 ] || { echo "FAIL: cold store run exited $status" >&2; exit 1; }
status=0
"$WORKDIR/check" -json -model all -store "$WORKDIR/verdicts" -progress "$WORKDIR/corpus.mctrace" >"$WORKDIR/warm.json" 2>"$WORKDIR/warm.err" || status=$?
[ "$status" -le 1 ] || { echo "FAIL: warm store run exited $status" >&2; exit 1; }
cmp "$GOLDEN" "$WORKDIR/cold.json" || { echo "FAIL: cold-store verdicts differ" >&2; exit 1; }
cmp "$GOLDEN" "$WORKDIR/warm.json" || { echo "FAIL: warm-store verdicts differ" >&2; exit 1; }
if ! grep -q "durable" "$WORKDIR/warm.err"; then
  echo "FAIL: warm store run reported no durable hits:" >&2
  cat "$WORKDIR/warm.err" >&2
  exit 1
fi

lines=$(wc -l <"$GOLDEN")
echo "OK: $lines oracle verdicts byte-identical across text/binary/stdin/parallel/exact/store paths"

// Command statuszcheck validates a saved mcversid /statusz scrape for
// the CI service smoke: the page must decode as the service's Statusz
// shape and carry at least one finished campaign whose phase breakdown
// is live (simulation spans recorded, exactly one merge span, a
// non-empty human summary). It exists so ci/service_smoke.sh can
// assert JSON structure without a jq dependency.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/service"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: statuszcheck <statusz.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fatalf("read: %v", err)
	}
	var sz service.Statusz
	if err := json.Unmarshal(data, &sz); err != nil {
		fatalf("statusz is not valid JSON: %v", err)
	}
	if sz.Stats.Done < 1 {
		fatalf("statusz reports %d finished campaigns, want >= 1", sz.Stats.Done)
	}
	var done *service.CampaignStatusz
	for i := range sz.Campaigns {
		if sz.Campaigns[i].State == service.StateDone {
			done = &sz.Campaigns[i]
			break
		}
	}
	if done == nil {
		fatalf("no campaign in state done among %d campaigns", len(sz.Campaigns))
	}
	if done.Obs.Sim.Count == 0 || done.Obs.Sim.Ns <= 0 {
		fatalf("campaign %s: no simulation spans in phase breakdown: %+v", done.ID, done.Obs)
	}
	if done.Obs.Merging.Count != 1 {
		fatalf("campaign %s: merge spans = %d, want exactly 1", done.ID, done.Obs.Merging.Count)
	}
	if done.PhaseSummary == "" || done.PhaseSummary == "no spans" {
		fatalf("campaign %s: empty phase summary %q", done.ID, done.PhaseSummary)
	}
	fmt.Printf("statusz OK: campaign %s done, phases: %s\n", done.ID, done.PhaseSummary)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "statuszcheck: "+format+"\n", args...)
	os.Exit(1)
}

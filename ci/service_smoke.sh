#!/usr/bin/env bash
# Service smoke: start a workerless mcversid, attach one remote
# mcversi-worker, run a 2-scenario campaign through the service, and
# byte-diff the merged result against the same campaign run locally.
# This is the distributed-equivalence guarantee exercised through the
# real binaries and a real TCP socket (the in-process variant lives in
# internal/service/equiv_test.go).
set -euo pipefail

WORKDIR=$(mktemp -d)
# xargs -r instead of an unquoted $(jobs -p): no word-splitting lint
# (SC2046), and no kill usage error when there are no jobs left.
trap 'jobs -p | xargs -r kill 2>/dev/null; rm -rf "$WORKDIR"' EXIT

ADDR=127.0.0.1:8473
URL="http://$ADDR"
CAMPAIGN=(-scenario mesi-tso,mesi-pso -gen rand -budget 30 -samples 2 -seed 11 -mem 1024)

go build -o "$WORKDIR" ./cmd/mcversi ./cmd/mcversid ./cmd/mcversi-worker

"$WORKDIR/mcversid" -listen "$ADDR" -workers 0 -shard-size 2 &

for i in $(seq 1 100); do
  if curl -sf "$URL/v1/healthz" >/dev/null 2>&1; then break; fi
  [ "$i" = 100 ] && { echo "mcversid never became healthy" >&2; exit 1; }
  sleep 0.1
done

"$WORKDIR/mcversi-worker" -server "$URL" -name ci-smoke -poll 100ms &

"$WORKDIR/mcversi" "${CAMPAIGN[@]}" -remote "$URL" -progress -merged-out "$WORKDIR/remote.json"
"$WORKDIR/mcversi" "${CAMPAIGN[@]}" -merged-out "$WORKDIR/local.json"

if ! cmp "$WORKDIR/local.json" "$WORKDIR/remote.json"; then
  echo "FAIL: distributed merged result differs from local bytes" >&2
  exit 1
fi
echo "OK: distributed and local merged results are byte-identical ($(wc -c <"$WORKDIR/local.json") bytes)"

# Observability smoke: after a real campaign, the daemon's /metrics and
# /statusz must be served, parseable, and live. The scrapes are written
# into $PWD so CI can upload them as artifacts.
curl -sf "$URL/metrics" >service-metrics.txt
curl -sf "$URL/statusz" >service-statusz.json

for family in \
  mcversid_campaigns_submitted_total \
  mcversid_campaigns_finished_total \
  mcversid_leases_issued_total \
  mcversid_queue_depth \
  mcversid_campaign_seconds_count \
  mcversid_check_fastpath_total \
  mcversid_phase_nanoseconds_total; do
  if ! grep -q "^$family" service-metrics.txt; then
    echo "FAIL: /metrics missing family $family" >&2
    exit 1
  fi
done

# Every non-comment line must be `name[{labels}] value` with a finite
# value — the contract a Prometheus scraper needs.
awk '
  /^#/ { next }
  NF == 0 { next }
  NF != 2 { print "FAIL: malformed sample line: " $0; bad = 1; next }
  $2 ~ /NaN|Inf/ { print "FAIL: non-finite sample: " $0; bad = 1; next }
  $2 !~ /^-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$/ { print "FAIL: unparseable value: " $0; bad = 1 }
  END { exit bad }
' service-metrics.txt

# The remote worker ran instrumented shards, so simulation time must
# have been attributed.
sim_ns=$(awk -F' ' '/^mcversid_phase_nanoseconds_total\{phase="sim"\}/ { print $2 }' service-metrics.txt)
if [ -z "$sim_ns" ] || ! awk -v v="$sim_ns" 'BEGIN { exit !(v > 0) }'; then
  echo "FAIL: sim phase nanoseconds not positive: '$sim_ns'" >&2
  exit 1
fi

# The smoke campaign runs only fast-path-supported models (TSO/PSO),
# so every verdict the worker shipped must have been decided by the
# fast-path checker — zero conclusive checks or any fallback means its
# scope silently regressed.
fast=$(awk -F' ' '/^mcversid_check_fastpath_total/ { print $2 }' service-metrics.txt)
fallback=$(awk -F' ' '/^mcversid_check_fallback_total/ { print $2 }' service-metrics.txt)
if [ -z "$fast" ] || ! awk -v v="$fast" 'BEGIN { exit !(v > 0) }'; then
  echo "FAIL: check fast-path total not positive: '$fast'" >&2
  exit 1
fi
if [ -n "$fallback" ] && ! awk -v v="$fallback" 'BEGIN { exit !(v == 0) }'; then
  echo "FAIL: fast path fell back $fallback times on TSO/PSO" >&2
  exit 1
fi

# /statusz must be JSON carrying the finished campaign with its phase
# breakdown (jq-free check: Go ships with CI, a scraper does not).
go run ./ci/statuszcheck service-statusz.json

echo "OK: /metrics parseable ($(grep -vc '^#' service-metrics.txt) samples, sim=${sim_ns}ns) and /statusz carries the phase breakdown"

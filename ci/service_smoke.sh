#!/usr/bin/env bash
# Service smoke: start a workerless mcversid, attach one remote
# mcversi-worker, run a 2-scenario campaign through the service, and
# byte-diff the merged result against the same campaign run locally.
# This is the distributed-equivalence guarantee exercised through the
# real binaries and a real TCP socket (the in-process variant lives in
# internal/service/equiv_test.go).
set -euo pipefail

WORKDIR=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

ADDR=127.0.0.1:8473
URL="http://$ADDR"
CAMPAIGN=(-scenario mesi-tso,mesi-pso -gen rand -budget 30 -samples 2 -seed 11 -mem 1024)

go build -o "$WORKDIR" ./cmd/mcversi ./cmd/mcversid ./cmd/mcversi-worker

"$WORKDIR/mcversid" -listen "$ADDR" -workers 0 -shard-size 2 &

for i in $(seq 1 100); do
  if curl -sf "$URL/v1/healthz" >/dev/null 2>&1; then break; fi
  [ "$i" = 100 ] && { echo "mcversid never became healthy" >&2; exit 1; }
  sleep 0.1
done

"$WORKDIR/mcversi-worker" -server "$URL" -name ci-smoke -poll 100ms &

"$WORKDIR/mcversi" "${CAMPAIGN[@]}" -remote "$URL" -progress -merged-out "$WORKDIR/remote.json"
"$WORKDIR/mcversi" "${CAMPAIGN[@]}" -merged-out "$WORKDIR/local.json"

if ! cmp "$WORKDIR/local.json" "$WORKDIR/remote.json"; then
  echo "FAIL: distributed merged result differs from local bytes" >&2
  exit 1
fi
echo "OK: distributed and local merged results are byte-identical ($(wc -c <"$WORKDIR/local.json") bytes)"

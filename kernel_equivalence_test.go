package mcversi

// Machine-level equivalence of the timing-wheel event kernel against
// the retired binary heap: whole campaigns — cores, all four coherence
// controllers, mesh, memory controller, checker, coverage, GP feedback
// — run on both kernels from the same seeds and must produce identical
// core.Result values. This is the proof that the wheel preserves the
// heap's (tick, scheduling-order) dispatch semantics exactly, which is
// what the fleet's byte-identical-at-any-worker-count guarantees (and
// every seeded regression in this repo) stand on.

import (
	"reflect"
	"testing"

	"repro/internal/benchwork"
	"repro/internal/core"
	"repro/internal/sim"
)

// heapBacked returns cfg with the machine's simulator running on the
// retired binary-heap kernel instead of the wheel.
func heapBacked(cfg core.Config) core.Config {
	cfg.Machine.Kernel = func() sim.ExternalKernel { return benchwork.NewHeapKernel() }
	return cfg
}

func TestKernelEquivalenceAcrossMachines(t *testing.T) {
	cases := []struct {
		name string
		cfg  CampaignConfig
	}{
		// Bug-free machines on both protocols: long quiet campaigns,
		// every controller's event traffic exercised.
		{"mesi-clean", ScaledScenarioConfig(GenRandom, mustScenario(t, "mesi-tso"), 1024)},
		{"tsocc-clean", ScaledScenarioConfig(GenRandom, mustScenario(t, "tsocc-tso"), 1024)},
		// A bug campaign: violation detection, early stop, squash paths.
		{"mesi-lq-bug", ScaledCampaignConfig(GenGPAll, MESI, "LQ+no-TSO", 1024)},
		// A relaxed scenario: fences, store-buffer groups, PSO checking.
		{"mesi-pso", ScaledScenarioConfig(GenRandom, mustScenario(t, "mesi-pso"), 1024)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := tc.cfg
			cfg.MaxTestRuns = 12
			if testing.Short() {
				cfg.MaxTestRuns = 5
			}
			for _, seed := range []int64{1, 7, 23} {
				cfg.Seed = seed
				wheel, err := core.RunCampaign(cfg)
				if err != nil {
					t.Fatalf("seed %d: wheel campaign: %v", seed, err)
				}
				heap, err := core.RunCampaign(heapBacked(cfg))
				if err != nil {
					t.Fatalf("seed %d: heap campaign: %v", seed, err)
				}
				if !reflect.DeepEqual(wheel, heap) {
					t.Errorf("seed %d: kernels diverged:\n wheel: %+v\n heap:  %+v", seed, wheel, heap)
				}
			}
		})
	}
}

// TestKernelEquivalenceProtocolBug pins the kernels against each other
// on the protocol-error detection path: a campaign against the
// PUTX-race bug (eviction-heavy 8KB layout, where the race is
// reachable) must report the identical violation, at the identical
// test-run, from both kernels. The RunUntil watchdog-cut equivalence
// is covered at the kernel level in internal/sim.
func TestKernelEquivalenceProtocolBug(t *testing.T) {
	cfg := ScaledCampaignConfig(GenGPAll, MESI, "MESI+PUTX-Race", 8192)
	cfg.MaxTestRuns = 300
	cfg.Seed = 17
	wheel, err := core.RunCampaign(cfg)
	if err != nil {
		t.Fatalf("wheel campaign: %v", err)
	}
	if !wheel.Found {
		t.Fatalf("PUTX-Race campaign found no bug; the test no longer covers the detection paths (result: %+v)", wheel)
	}
	heap, err := core.RunCampaign(heapBacked(cfg))
	if err != nil {
		t.Fatalf("heap campaign: %v", err)
	}
	if !reflect.DeepEqual(wheel, heap) {
		t.Errorf("kernels diverged:\n wheel: %+v\n heap:  %+v", wheel, heap)
	}
}

func mustScenario(t *testing.T, name string) Scenario {
	t.Helper()
	s, err := ScenarioByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
